//! The committed wall-clock baseline schema (`BENCH_e2e.json`) and the
//! scaling-sweep workload, shared by the `bench_baseline` and
//! `scaling_sweep` binaries so the writer and the CI regression gates agree
//! on every field.
//!
//! The local `serde` shim derives field-exact (de)serialisation — there is
//! no `#[serde(default)]` — so any change to these structs requires
//! regenerating the committed `BENCH_e2e.json` in the same commit.

use harmony_adaptive::config::ControllerConfig;
use harmony_adaptive::policy::StaticPolicy;
use harmony_chaos::FaultSchedule;
use harmony_sim::profiles;
use harmony_store::config::StoreConfig;
use harmony_ycsb::runner::{ExperimentResult, ExperimentSpec, Phase};
use harmony_ycsb::sharded::run_sharded_experiment;
use harmony_ycsb::workloads::WorkloadSpec;
use serde::{Deserialize, Serialize};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A passthrough global allocator tracking allocation calls, bytes in use
/// and the peak. Both `bench_baseline` and `scaling_sweep` install this
/// same allocator so their wall-clock numbers carry identical accounting
/// overhead — the per-shard CI gate compares measurements from one binary
/// against a baseline written by the other, and a cheaper allocator in
/// either would read as a phantom speedup or regression.
pub struct TrackingAllocator;

static ALLOCATION_CALLS: AtomicU64 = AtomicU64::new(0);
static IN_USE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn note_alloc(bytes: usize) {
    ALLOCATION_CALLS.fetch_add(1, Ordering::Relaxed);
    let now = IN_USE.fetch_add(bytes as u64, Ordering::Relaxed) + bytes as u64;
    PEAK.fetch_max(now, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        IN_USE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        IN_USE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        note_alloc(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

/// Allocator calls (alloc + realloc) so far.
pub fn allocation_calls() -> u64 {
    ALLOCATION_CALLS.load(Ordering::Relaxed)
}

/// Resets the peak to the current in-use level and returns that level, so
/// a subsequent [`peak_bytes`] reads this measurement window's high-water
/// mark alone.
pub fn reset_peak() -> u64 {
    let now = IN_USE.load(Ordering::Relaxed);
    PEAK.store(now, Ordering::Relaxed);
    now
}

/// The high-water mark of bytes in use since the last [`reset_peak`].
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// One timed sweep's aggregate measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepBaseline {
    /// Sweep name (`headline-quick` or `fig5-saturation-quick`).
    pub name: String,
    /// Wall-clock duration of the sweep in seconds.
    pub wall_secs: f64,
    /// Simulated operations completed across all runs of the sweep.
    pub operations: u64,
    /// Simulated operations per wall-clock second — the headline number.
    pub ops_per_sec_wall: f64,
    /// Median simulated read latency across the sweep's runs (ms).
    pub read_p50_ms: f64,
    /// 99th-percentile simulated read latency across the sweep's runs (ms).
    pub read_p99_ms: f64,
    /// Allocator calls (alloc + realloc) during the sweep.
    pub allocations: u64,
    /// Allocator calls per simulated operation.
    pub allocations_per_op: f64,
}

/// One shard count of the scaling sweep: the same total workload pushed
/// through `run_sharded_experiment` at a fixed shard count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Shard count (1 = the classic single-loop runner).
    pub shards: usize,
    /// Wall-clock duration of the point in seconds.
    pub wall_secs: f64,
    /// Simulated operations completed.
    pub operations: u64,
    /// Aggregate simulated operations per wall-clock second.
    pub ops_per_sec_wall: f64,
    /// `ops_per_sec_wall / shards` — the per-shard efficiency number the CI
    /// gate tracks, so a regression hidden by adding shards still fails.
    pub ops_per_sec_per_shard: f64,
}

/// The whole report, as committed at the repository root.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchBaseline {
    /// Schema version (2 = scaling section added).
    pub version: u32,
    /// Per-sweep measurements.
    pub sweeps: Vec<SweepBaseline>,
    /// The scaling sweep: one point per shard count.
    pub scaling: Vec<ScalingPoint>,
    /// Operations across all sweeps (the scaling points excluded, so the
    /// aggregate gate stays comparable across schema versions).
    pub total_operations: u64,
    /// Wall-clock seconds across all sweeps.
    pub total_wall_secs: f64,
    /// Overall simulated operations per wall-clock second — the number the
    /// CI regression gate compares.
    pub total_ops_per_sec_wall: f64,
}

impl BenchBaseline {
    /// The committed scaling point for a shard count, if one exists.
    pub fn scaling_for(&self, shards: usize) -> Option<&ScalingPoint> {
        self.scaling.iter().find(|p| p.shards == shards)
    }
}

/// One line of `BENCH_history.json` — the wall-clock headline of one
/// baseline regeneration (or a value recovered from a PR's notes for runs
/// that predate the history file).
///
/// The history exists because `BENCH_e2e.json` is overwritten on every
/// regeneration: without it, cross-PR comparisons live only in prose.
/// Numbers are comparable **only within one machine**; the `source` field
/// says where each came from.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistoryEntry {
    /// What produced the number (e.g. `PR 4: allocation-free hot path`).
    pub label: String,
    /// Seconds since the Unix epoch at measurement time (0 when recovered
    /// from notes rather than measured by this binary).
    pub unix_time_secs: u64,
    /// Overall simulated operations per wall-clock second across the
    /// headline + fig5 sweeps — the number the CI regression gate compares.
    pub total_ops_per_sec_wall: f64,
    /// Allocator calls per simulated operation across the sweeps (0 when
    /// the source did not record it).
    pub allocations_per_op: f64,
    /// Aggregate ops/s of the scaling sweep in shard-count order
    /// (empty when the source predates the scaling section).
    pub scaling_ops_per_sec_wall: Vec<f64>,
    /// `measured` (written by `bench_baseline`) or `recovered` (seeded from
    /// a PR's recorded numbers).
    pub source: String,
}

/// Reads `BENCH_history.json` (an array of [`HistoryEntry`]); a missing
/// file is an empty history, a corrupt one is an error.
pub fn load_history(path: &std::path::Path) -> Result<Vec<HistoryEntry>, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => serde_json::from_str(&text).map_err(|e| format!("corrupt {path:?}: {e:?}")),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(format!("cannot read {path:?}: {e}")),
    }
}

/// Appends one entry built from a fresh [`BenchBaseline`] and rewrites the
/// history file.
pub fn append_history(
    path: &std::path::Path,
    report: &BenchBaseline,
    label: &str,
) -> Result<usize, String> {
    let mut history = load_history(path)?;
    let allocations_per_op = {
        let ops: u64 = report.sweeps.iter().map(|s| s.operations).sum();
        let allocs: u64 = report.sweeps.iter().map(|s| s.allocations).sum();
        allocs as f64 / ops.max(1) as f64
    };
    history.push(HistoryEntry {
        label: label.to_string(),
        unix_time_secs: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        total_ops_per_sec_wall: report.total_ops_per_sec_wall,
        allocations_per_op,
        scaling_ops_per_sec_wall: report.scaling.iter().map(|p| p.ops_per_sec_wall).collect(),
        source: "measured".to_string(),
    });
    let json = serde_json::to_string_pretty(&history).map_err(|e| format!("{e:?}"))?;
    std::fs::write(path, json + "\n").map_err(|e| format!("cannot write {path:?}: {e}"))?;
    Ok(history.len())
}

/// Builds a [`ScalingPoint`] from a timed run.
pub fn scaling_point(shards: usize, operations: u64, wall_secs: f64) -> ScalingPoint {
    let ops_per_sec_wall = operations as f64 / wall_secs.max(1e-9);
    ScalingPoint {
        shards,
        wall_secs,
        operations,
        ops_per_sec_wall,
        ops_per_sec_per_shard: ops_per_sec_wall / shards.max(1) as f64,
    }
}

/// The scaling-sweep workload: deliberately throughput-oriented, because
/// the sweep measures *engine* throughput (simulated operations per
/// wall-clock second), not adaptation quality. Read-heavy YCSB-B over a
/// Zipfian keyspace, RF 3, static eventual consistency (read ONE), and the
/// default 1 s monitoring cadence — so the per-operation event count is as
/// small as the protocol allows and the barrier exchange stays off the hot
/// path. The figure sweeps keep measuring the paper's RF 5 / 50:50 /
/// adaptive configuration; this one exists to pin how fast the simulator
/// core moves keys.
pub fn scaling_spec(operations: u64, records: u64, seed: u64) -> ExperimentSpec {
    let mut workload = WorkloadSpec::workload_b(records);
    workload.field_count = 2;
    workload.field_size = 16;
    ExperimentSpec {
        workload,
        phases: vec![Phase::new(32, operations)],
        seed,
        dual_read_measurement: false,
        hot_key_prefix: 0,
        max_virtual_secs: 3_600.0,
    }
}

/// Runs one scaling point `iters` times and keeps the fastest wall-clock
/// measurement (best-of-N): the first iteration in a fresh process runs up
/// to ~40% slow from cold caches and allocator warm-up, which would make a
/// 20%-tolerance CI gate flap. The simulated stats are identical across
/// iterations (same seed, deterministic runtime), so only the wall clock
/// differs.
pub fn measure_scaling_point(
    shards: usize,
    operations: u64,
    records: u64,
    iters: usize,
) -> (ScalingPoint, ExperimentResult) {
    let mut best: Option<(f64, ExperimentResult)> = None;
    for _ in 0..iters.max(1) {
        let started = Instant::now();
        let result = run_scaling_point(shards, operations, records);
        let wall = started.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(w, _)| wall < *w) {
            best = Some((wall, result));
        }
    }
    let (wall, result) = best.expect("at least one iteration");
    (scaling_point(shards, result.stats.operations, wall), result)
}

/// Runs one scaling point: the [`scaling_spec`] workload through the
/// sharded entry point at the given shard count.
pub fn run_scaling_point(shards: usize, operations: u64, records: u64) -> ExperimentResult {
    let store = StoreConfig {
        replication_factor: 3,
        node_concurrency: 4,
        ..StoreConfig::default()
    };
    run_sharded_experiment(
        &profiles::grid5000_with_nodes(8),
        store,
        ControllerConfig::default(),
        Box::new(StaticPolicy::Eventual),
        scaling_spec(operations, records, 20120920),
        FaultSchedule::empty(),
        shards,
    )
}

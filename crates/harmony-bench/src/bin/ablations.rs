//! Ablation studies for the design choices called out in DESIGN.md §6.
//!
//! * **Rate estimator** — sliding-window (the paper's periodic collection)
//!   vs EWMA smoothing: how the choice affects staleness and latency.
//! * **Monitoring period** — 0.25 s / 1 s / 4 s sweeps: a slower monitor
//!   reacts later to load changes, letting more stale reads slip through.
//! * **Read repair** — background read-repair probability 0 vs 0.1 vs 1.0:
//!   repair traffic converges replicas faster (fewer stale reads) at the cost
//!   of extra replica work.
//! * **Fixed quorum vs computed Xn** — always reading at QUORUM compared with
//!   Harmony's computed replica count at the same tolerance.
//!
//! Usage: `cargo run --release -p harmony-bench --bin ablations [-- --quick]`

use harmony_adaptive::config::ControllerConfig;
use harmony_bench::experiments::{
    grid5000_experiment_config, run_point, ExperimentConfig, PolicySpec,
};
use harmony_bench::report::{has_flag, Table};
use harmony_monitor::collector::EstimatorKind;

fn scaled(quick: bool) -> ExperimentConfig {
    let mut config = grid5000_experiment_config();
    if quick {
        config.records = 4_000;
        config.operations_per_thread = 250;
        config.min_operations = 8_000;
    } else {
        config.min_operations = 10_000;
        config.operations_per_thread = 200;
    }
    config
}

fn row_from(table: &mut Table, label: &str, result: &harmony_ycsb::runner::ExperimentResult) {
    table.add_row(vec![
        label.to_string(),
        format!("{:.0}", result.throughput()),
        format!("{:.3}", result.read_p99_ms()),
        result.stats.stale_reads.to_string(),
        format!("{:.2}%", result.stats.stale_fraction() * 100.0),
        format!("{}", result.cluster_totals.repairs_issued),
    ]);
}

fn headers() -> Vec<&'static str> {
    vec![
        "variant",
        "ops/s",
        "read p99 (ms)",
        "stale reads",
        "stale %",
        "repairs",
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_flag(&args, "--quick");
    let threads = 70;

    // 1. Rate estimator.
    println!("Ablation 1 — rate estimator feeding the model (Harmony-20%, {threads} threads)");
    let mut table = Table::new(headers());
    for (label, estimator) in [
        (
            "sliding-window 5s (paper-like)",
            EstimatorKind::SlidingWindow(5.0),
        ),
        ("sliding-window 1s", EstimatorKind::SlidingWindow(1.0)),
        ("ewma alpha=0.3", EstimatorKind::Ewma(0.3)),
        ("ewma alpha=0.9", EstimatorKind::Ewma(0.9)),
    ] {
        let mut config = scaled(quick);
        config.controller = ControllerConfig {
            monitor: harmony_monitor::collector::MonitorConfig {
                estimator,
                ..Default::default()
            },
            ..ControllerConfig::default()
        };
        let result = run_point(&config, &PolicySpec::Harmony(0.2), threads, false);
        row_from(&mut table, label, &result);
    }
    println!("{table}");

    // 2. Monitoring period.
    println!("Ablation 2 — monitoring period (Harmony-20%, {threads} threads)");
    let mut table = Table::new(headers());
    for period in [0.25, 1.0, 4.0] {
        let mut config = scaled(quick);
        config.controller.monitor.interval_secs = period;
        let result = run_point(&config, &PolicySpec::Harmony(0.2), threads, false);
        row_from(&mut table, &format!("period {period:.2} s"), &result);
    }
    println!("{table}");

    // 3. Background read repair.
    println!(
        "Ablation 3 — background read-repair probability (eventual consistency, {threads} threads)"
    );
    let mut table = Table::new(headers());
    for chance in [0.0, 0.1, 1.0] {
        let mut config = scaled(quick);
        config.store.background_read_repair_chance = chance;
        let result = run_point(&config, &PolicySpec::Eventual, threads, false);
        row_from(
            &mut table,
            &format!("read_repair_chance {chance:.1}"),
            &result,
        );
    }
    println!("{table}");

    // 4. Fixed quorum vs Harmony's computed Xn.
    println!("Ablation 4 — static QUORUM vs Harmony's computed replica count ({threads} threads)");
    let mut table = Table::new(headers());
    for policy in [
        PolicySpec::Quorum,
        PolicySpec::Harmony(0.2),
        PolicySpec::Harmony(0.4),
    ] {
        let config = scaled(quick);
        let result = run_point(&config, &policy, threads, false);
        row_from(&mut table, &policy.label(), &result);
    }
    println!("{table}");
    println!(
        "Expected: static QUORUM pays quorum latency on every read even when the system is quiet,\n\
         while Harmony only escalates when the estimate crosses the tolerance — similar staleness,\n\
         better latency/throughput."
    );
}

//! Failure and elasticity sweep: the adaptive controller under injected
//! faults, against a no-faults baseline and the always-strong policy under
//! the *same* fault schedule.
//!
//! Four scenarios from the `harmony-chaos` schedule DSL, each replayed
//! deterministically inside a Zipfian (hot-spotted) run:
//!
//! * `crash-hot` — a replica crashes mid-run during the hot phase and
//!   restarts later; its hinted mutations flood the write stage on restart.
//! * `rolling-restart` — three nodes crash and restart one after another (a
//!   rolling upgrade).
//! * `partition` — a two-node minority is cut off for the scaled equivalent
//!   of the paper's 30 s (the monitoring period is compressed 20×, so 30
//!   paper-seconds ≈ 1.5 virtual seconds), then heals.
//! * `scale-out` — two new nodes join under load; the ring and the
//!   placement cache follow, and bootstrap streaming keeps reads fresh.
//!
//! For every scenario the table reports throughput (and its delta against
//! the no-faults run), the ground-truth stale rate, the *hot-key* stale rate
//! against the tolerated rate the application asked for, aborted operations
//! and the faults actually applied. The paper-grade claim to look for: the
//! hot-key stale rate stays within the tolerance through every fault while
//! throughput stays clearly above always-strong.
//!
//! Usage:
//!   cargo run --release -p harmony-bench --bin fault_sweep
//!   cargo run --release -p harmony-bench --bin fault_sweep -- --profile ec2
//! Flags: `--quick`, `--json <path>`, `--profile <grid5000|ec2|multi-dc>`,
//! `--obs` (rerun the crash scenario with tracing/metrics/audit on and dump
//! the Prometheus snapshot, a fault-spanning per-op trace, and the decision
//! audit records around the crash).

use harmony_bench::experiments::{
    config_by_name, run_workload_point_with_faults, run_workload_point_with_obs, ExperimentConfig,
    PolicySpec,
};
use harmony_bench::report::{has_flag, json_arg, profile_arg, Table};
use harmony_chaos::FaultSchedule;
use harmony_sim::profiles;
use harmony_sim::topology::NodeId;
use harmony_ycsb::runner::ExperimentResult;
use harmony_ycsb::workloads::{RequestDistribution, WorkloadSpec};
use serde::Serialize;

/// The number of lowest-index records reported as the workload's hot keys
/// (the head of the unscrambled Zipfian chooser).
const HOT_PREFIX: u64 = 16;

/// One (scenario, policy) sweep point.
#[derive(Debug, Clone, Serialize)]
struct FaultRow {
    scenario: String,
    policy: String,
    throughput: f64,
    stale_fraction: f64,
    hot_stale_fraction: f64,
    tolerance: f64,
    aborted_ops: u64,
    faults_applied: u64,
    operations: u64,
}

fn zipfian_workload(config: &ExperimentConfig) -> WorkloadSpec {
    let mut w =
        WorkloadSpec::workload_a(config.records).with_distribution(RequestDistribution::Zipfian);
    w.field_size = 64;
    w
}

fn run_point(
    config: &ExperimentConfig,
    policy: &PolicySpec,
    threads: usize,
    faults: FaultSchedule,
) -> ExperimentResult {
    run_workload_point_with_faults(
        config,
        zipfian_workload(config),
        policy,
        threads,
        HOT_PREFIX,
        // The split controller: hot keys get individual decisions, which is
        // exactly what must hold the hot-key stale rate through a fault.
        matches!(policy, PolicySpec::Harmony(_)),
        faults,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile_name = profile_arg(&args, "grid5000");
    let quick = has_flag(&args, "--quick");
    let mut config = config_by_name(&profile_name).unwrap_or_else(|| {
        // Profiles outside the two paper platforms (the multi-DC profile)
        // reuse the Grid'5000 store scaling on their own topology.
        let mut c = config_by_name("grid5000").expect("grid5000 exists");
        c.profile = profiles::by_name(&profile_name)
            .unwrap_or_else(|| panic!("unknown profile {profile_name}"));
        c.store.replication_factor = c.profile.replication_factor;
        c
    });
    if quick {
        config.records = 4_000;
        config.operations_per_thread = 300;
        config.min_operations = 9_000;
    }
    let threads = if quick { 24 } else { 40 };
    let tolerance = config.profile.harmony_settings[1];
    let harmony = PolicySpec::Harmony(tolerance);
    let strong = PolicySpec::Strong;

    println!(
        "Failure and elasticity sweep — {} profile, RF = {}, {} threads, zipfian hot set of {}",
        config.profile.name, config.store.replication_factor, threads, HOT_PREFIX
    );

    // The no-faults baseline also calibrates the fault times: scenarios place
    // their events at fractions of the measured (virtual) run duration.
    let baseline = run_point(&config, &harmony, threads, FaultSchedule::empty());
    let duration = baseline.stats.duration_secs().max(0.2);
    // The paper-scale "30 s partition" compressed by the monitoring-period
    // scaling (1 s paper period → 50 ms here): 30 monitoring intervals.
    let partition_secs = (30.0 * 0.05f64).min(duration * 0.5);
    let minority = vec![NodeId(2), NodeId(3)];
    let everyone_else: Vec<NodeId> = config
        .profile
        .topology
        .nodes()
        .filter(|n| !minority.contains(n))
        .collect();

    let scenarios: Vec<(&str, FaultSchedule)> = vec![
        ("baseline", FaultSchedule::empty()),
        (
            "crash-hot",
            FaultSchedule::empty()
                .crash_at(duration * 0.25, NodeId(1))
                .restart_at(duration * 0.6, NodeId(1)),
        ),
        (
            "rolling-restart",
            FaultSchedule::empty()
                .crash_at(duration * 0.2, NodeId(0))
                .restart_at(duration * 0.3, NodeId(0))
                .crash_at(duration * 0.4, NodeId(1))
                .restart_at(duration * 0.5, NodeId(1))
                .crash_at(duration * 0.6, NodeId(2))
                .restart_at(duration * 0.7, NodeId(2)),
        ),
        (
            "partition",
            FaultSchedule::empty()
                .partition_at(duration * 0.3, vec![everyone_else, minority])
                .heal_at(duration * 0.3 + partition_secs),
        ),
        (
            "scale-out",
            FaultSchedule::empty()
                .join_at(duration * 0.4, 0, 0)
                .join_at(duration * 0.55, 0, 1),
        ),
    ];

    let mut rows: Vec<FaultRow> = Vec::new();
    let mut table = Table::new(vec![
        "scenario".to_string(),
        "policy".to_string(),
        "ops/s".to_string(),
        "vs baseline".to_string(),
        "stale %".to_string(),
        "hot stale %".to_string(),
        "tolerated %".to_string(),
        "aborted".to_string(),
        "faults".to_string(),
    ]);
    let baseline_throughput = baseline.throughput();
    let mut hot_within_tolerance = true;
    let mut harmony_beats_strong = true;

    for (name, schedule) in scenarios {
        for (policy, label) in [(&harmony, harmony.label()), (&strong, "strong".to_string())] {
            let result = if name == "baseline" && matches!(policy, PolicySpec::Harmony(_)) {
                baseline.clone()
            } else {
                run_point(&config, policy, threads, schedule.clone())
            };
            let row = FaultRow {
                scenario: name.to_string(),
                policy: label.clone(),
                throughput: result.throughput(),
                stale_fraction: result.stats.stale_fraction(),
                hot_stale_fraction: result.stats.hot_stale_fraction(),
                tolerance,
                aborted_ops: result.stats.aborted_ops,
                faults_applied: result.fault_counters.total(),
                operations: result.stats.operations,
            };
            if matches!(policy, PolicySpec::Harmony(_)) {
                hot_within_tolerance &= row.hot_stale_fraction <= tolerance;
            }
            table.add_row(vec![
                name.to_string(),
                label,
                format!("{:.0}", row.throughput),
                format!(
                    "{:+.0}%",
                    (row.throughput / baseline_throughput - 1.0) * 100.0
                ),
                format!("{:.1}%", row.stale_fraction * 100.0),
                format!("{:.1}%", row.hot_stale_fraction * 100.0),
                format!("{:.0}%", tolerance * 100.0),
                row.aborted_ops.to_string(),
                row.faults_applied.to_string(),
            ]);
            rows.push(row);
        }
        // Per-scenario policy comparison: Harmony vs strong under the same
        // faults.
        let pair: Vec<&FaultRow> = rows.iter().rev().take(2).collect();
        harmony_beats_strong &= pair[1].throughput > pair[0].throughput;
    }
    println!("{table}");
    println!(
        "Hot-key stale rate within the {:.0}% tolerance in every scenario: {}",
        tolerance * 100.0,
        if hot_within_tolerance { "yes" } else { "NO" }
    );
    println!(
        "Adaptive controller beats always-strong under every fault schedule: {}",
        if harmony_beats_strong { "yes" } else { "NO" }
    );
    println!(
        "Shape check: crashes dent throughput while hints accumulate, the restart's hint\n\
         drain shows up as a backlog spike the controller rides out by escalating reads,\n\
         and the empty-schedule baseline is byte-identical to a run without the chaos layer."
    );

    if has_flag(&args, "--obs") {
        dump_observed_crash(&config, &harmony, threads, duration);
    }

    if let Some(path) = json_arg(&args) {
        harmony_bench::report::write_json(&path, &rows).expect("write json");
        println!("JSON written to {}", path.display());
    }
}

/// `--obs`: the crash-hot scenario once more with the observability layer
/// on — every 4th op traced so the recorder catches ops in flight across
/// the crash — then the three exports: the Prometheus metrics snapshot, a
/// per-op trace that spans the fault epoch, and the decision audit records
/// that explain the controller's escalations around the crash.
fn dump_observed_crash(
    config: &ExperimentConfig,
    policy: &PolicySpec,
    threads: usize,
    duration: f64,
) {
    let faults = FaultSchedule::empty()
        .crash_at(duration * 0.25, NodeId(1))
        .restart_at(duration * 0.6, NodeId(1));
    let obs = harmony_ycsb::ObsConfig {
        trace_sample_every: 4,
        ..harmony_ycsb::ObsConfig::enabled()
    };
    let (result, report) = run_workload_point_with_obs(
        config,
        zipfian_workload(config),
        policy,
        threads,
        HOT_PREFIX,
        true,
        faults,
        obs,
    );
    println!();
    println!(
        "=== observed crash-hot rerun ({} ops, {} fault event(s) applied) ===",
        result.stats.operations,
        result.fault_counters.total()
    );
    println!();
    println!("--- Prometheus metrics snapshot ---");
    print!("{}", report.prometheus_text());
    println!();
    let spanning = report.fault_spanning_traces();
    println!(
        "--- per-op traces spanning the crash epoch ({} of {} retained) ---",
        spanning.len(),
        report.recorder.len()
    );
    for trace in spanning.iter().take(2) {
        println!("{}", trace.render());
    }
    let escalations = report.escalations();
    println!(
        "--- decision audit: {} record(s), {} escalation(s) ---",
        report.audit.len(),
        escalations.len()
    );
    for record in escalations.iter().take(4) {
        println!("  {}", record.explain());
    }
    if escalations.is_empty() {
        // A quick run can ride out the crash without raising the level; the
        // audit still links every held decision to its inputs.
        for record in report.audit.iter().take(4) {
            println!("  {}", record.explain());
        }
    }
}

//! Figures 5(a) and 5(b): 99th-percentile read latency vs client threads.
//!
//! The paper compares Harmony at two tolerated-stale-read settings against
//! static eventual consistency and static strong consistency, on Grid'5000
//! (Harmony-20%/40%) and on EC2 (Harmony-40%/60%), as the number of client
//! threads grows from 1 to ~130. Strong consistency has the highest latency,
//! eventual the lowest, and Harmony sits close to eventual — rising slightly
//! as the tolerance becomes stricter.
//!
//! Usage:
//!   cargo run --release -p harmony-bench --bin fig5_latency -- --profile grid5000   # Figure 5(a)
//!   cargo run --release -p harmony-bench --bin fig5_latency -- --profile ec2        # Figure 5(b)
//! Flags: `--quick` (smaller runs), `--json <path>`.

use harmony_bench::experiments::{
    config_by_name, fig5_thread_counts, run_policy_sweep, PolicySpec,
};
use harmony_bench::report::{has_flag, json_arg, profile_arg, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile_name = profile_arg(&args, "grid5000");
    let quick = has_flag(&args, "--quick");
    let mut config = config_by_name(&profile_name)
        .unwrap_or_else(|| panic!("unknown profile {profile_name} (use grid5000 or ec2)"));
    if quick {
        config.records = 4_000;
        config.operations_per_thread = 250;
        config.min_operations = 8_000;
    }
    let figure = if profile_name == "ec2" {
        "5(b)"
    } else {
        "5(a)"
    };
    let thread_counts = if quick {
        vec![1, 15, 40, 90]
    } else {
        fig5_thread_counts()
    };
    let policies = PolicySpec::paper_set(&config.profile);

    println!(
        "Figure {figure} — 99th-percentile read latency vs client threads ({} profile, RF = {})",
        config.profile.name, config.store.replication_factor
    );
    let rows = run_policy_sweep(&config, &policies, &thread_counts, false);

    let mut table = Table::new(
        std::iter::once("threads".to_string())
            .chain(policies.iter().map(|p| format!("{} p99 (ms)", p.label())))
            .collect::<Vec<_>>(),
    );
    for &threads in &thread_counts {
        let mut cells = vec![threads.to_string()];
        for policy in &policies {
            let row = rows
                .iter()
                .find(|r| r.threads == threads && r.policy == policy.label())
                .expect("row present");
            cells.push(format!("{:.3}", row.read_p99_ms));
        }
        table.add_row(cells);
    }
    println!("{table}");
    println!(
        "Paper shape check: strong consistency has the highest p99 at every thread count and grows\n\
         fastest with load; eventual consistency is the floor; Harmony tracks the eventual curve,\n\
         with the stricter tolerance ({}) slightly above the looser one ({}).",
        policies[1].label(),
        policies[0].label()
    );

    if let Some(path) = json_arg(&args) {
        harmony_bench::report::write_json(&path, &rows).expect("write json");
        println!("JSON written to {}", path.display());
    }
}

//! Self-healing sweep: how fast the adaptive controller *relaxes back* after
//! a healed partition, with and without the repair machinery.
//!
//! One deterministic scenario — a two-node minority cut off mid-run, healed
//! after the scaled equivalent of the paper's 30 s — replayed under three
//! arms that differ only in the self-healing knobs:
//!
//! * `no-repair` — the seed behaviour: hinted handoff only, repair-blind
//!   staleness model, no client retries. The post-heal hint drain keeps the
//!   monitored backlog (and therefore the model's staleness window) wide, so
//!   reads stay escalated long after the heal.
//! * `repair` — the store runs periodic anti-entropy rounds and the
//!   controller's staleness model is told about them (`Tp / (1 + ρ·Tp)`),
//!   with the hint buffer bounded so handoff alone cannot converge. The
//!   divergence is streamed shut off the read path and the tighter window
//!   lets the controller relax sooner.
//! * `repair+retry` — additionally, clients retry fault-aborted operations
//!   with bounded exponential backoff (a retried attempt reconnects to the
//!   next coordinator, which usually sits on the majority side of the cut),
//!   converting the partition's unavailability errors.
//!
//! The table reports throughput, stale rates, aborted operations, retries,
//! the repair work actually done, and the headline number: the **post-heal
//! relax time** — how long after the heal the divergent-key count (sampled
//! on monitoring ticks) took to drop back under the run's own pre-cut
//! steady-state ceiling and stay there through the end of the run.
//! With the hint buffer bounded, handoff alone cannot close the cut's
//! divergence: the no-repair arm stays divergent to the end of the run
//! (reported as a `>=` lower bound), while anti-entropy streams the gap shut
//! within a few rounds of the heal. The paper-grade claim to look for: with
//! repair armed the relax time is strictly shorter than the no-repair
//! baseline, while the hot-key stale rate stays within the tolerated rate.
//!
//! Usage:
//!   cargo run --release -p harmony-bench --bin repair_sweep
//! Flags: `--quick`, `--json <path>`, `--profile <grid5000|ec2|multi-dc>`.

use harmony_bench::experiments::{
    config_by_name, run_workload_point_with_retry, ExperimentConfig, PolicySpec,
};
use harmony_bench::report::{has_flag, json_arg, profile_arg, Table};
use harmony_chaos::FaultSchedule;
use harmony_sim::profiles;
use harmony_sim::topology::NodeId;
use harmony_ycsb::runner::{ExperimentResult, RetryPolicy};
use harmony_ycsb::workloads::{RequestDistribution, WorkloadSpec};
use serde::Serialize;

/// The number of lowest-index records reported as the workload's hot keys.
const HOT_PREFIX: u64 = 16;

/// Anti-entropy cadence while armed (virtual seconds between rounds; one
/// node initiates per round, so a full cursor cycle takes `nodes` rounds).
const AE_INTERVAL_SECS: f64 = 0.02;

/// One sweep arm.
#[derive(Debug, Clone, Serialize)]
struct RepairRow {
    arm: String,
    throughput: f64,
    stale_fraction: f64,
    hot_stale_fraction: f64,
    tolerance: f64,
    aborted_ops: u64,
    retries: u64,
    ae_rounds: u64,
    ae_rows_streamed: u64,
    hints_evicted: u64,
    relax_secs: f64,
    /// True when the arm never re-converged: `relax_secs` is only the lower
    /// bound the run could observe.
    relax_is_lower_bound: bool,
    operations: u64,
}

fn zipfian_workload(config: &ExperimentConfig) -> WorkloadSpec {
    let mut w =
        WorkloadSpec::workload_a(config.records).with_distribution(RequestDistribution::Zipfian);
    w.field_size = 64;
    w
}

/// How long after `heal_secs` the cluster took to relax back to its
/// steady-state divergence level, per the runner's chaos-tick divergence
/// timeline. Under load some keys are always transiently divergent
/// (acknowledged writes still propagating), so "relaxed" is self-calibrated:
/// the pre-cut samples of the same run set the steady-state ceiling, and the
/// relax time is when the post-heal divergence count drops back under that
/// ceiling and stays there through the end of the run. The ceiling carries
/// 2x headroom: the pre-cut window holds a handful of samples while the
/// post-heal tail holds dozens, so comparing strict maxima across windows of
/// such different sizes flaps on sampling noise — and twice the steady band
/// is still far under the unrepaired plateau (~10x steady). An arm that
/// never drains (e.g. evicted hints with no anti-entropy) returns the full
/// remaining run as a lower bound, with `bounded = true`.
fn post_heal_relax_secs(result: &ExperimentResult, cut_secs: f64, heal_secs: f64) -> (f64, bool) {
    let samples = &result.divergence_timeline;
    let ceiling = samples
        .iter()
        .filter(|s| s.at_secs < cut_secs)
        .map(|s| s.divergent_keys)
        .max()
        .unwrap_or(0)
        .max(1)
        * 2;
    let mut relaxed_at: Option<f64> = None;
    for s in samples.iter().filter(|s| s.at_secs >= heal_secs) {
        if s.divergent_keys <= ceiling {
            relaxed_at.get_or_insert(s.at_secs);
        } else {
            relaxed_at = None;
        }
    }
    match relaxed_at {
        Some(at) => ((at - heal_secs).max(0.0), false),
        None => ((result.stats.duration_secs() - heal_secs).max(0.0), true),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile_name = profile_arg(&args, "grid5000");
    let quick = has_flag(&args, "--quick");
    let mut config = config_by_name(&profile_name).unwrap_or_else(|| {
        let mut c = config_by_name("grid5000").expect("grid5000 exists");
        c.profile = profiles::by_name(&profile_name)
            .unwrap_or_else(|| panic!("unknown profile {profile_name}"));
        c.store.replication_factor = c.profile.replication_factor;
        c
    });
    if quick {
        config.records = 4_000;
        config.operations_per_thread = 1_000;
        config.min_operations = 30_000;
    }
    let threads = if quick { 24 } else { 40 };
    // The stricter of the paper's two Grid'5000 settings: the global
    // controller must actually escalate the default read level around the
    // cut, so the post-heal relax time is a visible, nonzero signal.
    let tolerance = config.profile.harmony_settings[0];
    let harmony = PolicySpec::Harmony(tolerance);
    // Bound the hint buffer in *every* arm, so the no-repair baseline is the
    // honest degraded case the repair arms fix (unbounded hints would let
    // handoff converge everything by itself).
    config.store.hint_cap_per_origin = 8;

    println!(
        "Self-healing sweep — {} profile, RF = {}, {} threads, zipfian hot set of {}",
        config.profile.name, config.store.replication_factor, threads, HOT_PREFIX
    );

    let run = |config: &ExperimentConfig, faults: FaultSchedule, retry: RetryPolicy| {
        run_workload_point_with_retry(
            config,
            zipfian_workload(config),
            &harmony,
            threads,
            HOT_PREFIX,
            // The *global* controller: the default read level carries the
            // escalation, so `replicas_in_read` is the relax signal.
            false,
            faults,
            retry,
        )
    };

    // The no-faults baseline calibrates the schedule: the cut lands mid-run
    // and heals after the scaled equivalent of the paper's 30 s partition
    // (1 s paper monitoring period → 50 ms here).
    let baseline = run(&config, FaultSchedule::empty(), RetryPolicy::default());
    if has_flag(&args, "--timeline") {
        for d in &baseline.decisions {
            println!(
                "  [baseline] t={:.3} replicas={} estimate={:?} backlog={:.3} spread={:.3} tp={:.6}",
                d.at.as_secs_f64(),
                d.replicas_in_read,
                d.estimate,
                d.backlog_ms,
                d.backlog_spread_ms,
                d.tp_secs,
            );
        }
    }
    let duration = baseline.stats.duration_secs().max(0.2);
    // Cut early and keep a long post-heal tail: the relax time needs several
    // monitoring periods of headroom on both sides to be a meaningful signal.
    let cut_secs = duration * 0.2;
    let partition_secs = (30.0 * 0.05f64).min(duration * 0.2);
    let heal_secs = cut_secs + partition_secs;
    let minority = vec![NodeId(2), NodeId(3)];
    let everyone_else: Vec<NodeId> = config
        .profile
        .topology
        .nodes()
        .filter(|n| !minority.contains(n))
        .collect();
    let schedule = || {
        FaultSchedule::empty()
            .partition_at(cut_secs, vec![everyone_else.clone(), minority.clone()])
            .heal_at(heal_secs)
    };
    let retry = RetryPolicy {
        max_attempts: 4,
        base_backoff_ms: 0.5,
        max_backoff_ms: 8.0,
        hedge_after_ms: 0.0,
    };

    // Arm the repair knobs on a copy: periodic anti-entropy in the store,
    // and the matching repair-progress term in the staleness model (rate in
    // effective rounds per second).
    let mut repair_config = config.clone();
    repair_config.store.anti_entropy_interval_secs = AE_INTERVAL_SECS;
    repair_config.controller.anti_entropy_repair_rate = 1.0 / AE_INTERVAL_SECS;

    let arms: Vec<(&str, &ExperimentConfig, RetryPolicy)> = vec![
        ("no-repair", &config, RetryPolicy::default()),
        ("repair", &repair_config, RetryPolicy::default()),
        ("repair+retry", &repair_config, retry),
    ];

    let mut rows: Vec<RepairRow> = Vec::new();
    let mut table = Table::new(vec![
        "arm".to_string(),
        "ops/s".to_string(),
        "stale %".to_string(),
        "hot stale %".to_string(),
        "tolerated %".to_string(),
        "aborted".to_string(),
        "retries".to_string(),
        "ae rounds".to_string(),
        "rows streamed".to_string(),
        "hints evicted".to_string(),
        "relax (s)".to_string(),
    ]);
    let timeline = has_flag(&args, "--timeline");
    for (arm, arm_config, arm_retry) in arms {
        let result = run(arm_config, schedule(), arm_retry);
        let (relax_secs, relax_is_lower_bound) = post_heal_relax_secs(&result, cut_secs, heal_secs);
        if timeline {
            for s in &result.divergence_timeline {
                println!(
                    "  [{arm}] t={:.3} divergent_keys={}",
                    s.at_secs, s.divergent_keys
                );
            }
        }
        let row = RepairRow {
            arm: arm.to_string(),
            throughput: result.throughput(),
            stale_fraction: result.stats.stale_fraction(),
            hot_stale_fraction: result.stats.hot_stale_fraction(),
            tolerance,
            aborted_ops: result.stats.aborted_ops,
            retries: result.stats.retries,
            ae_rounds: result.cluster_totals.ae_rounds,
            ae_rows_streamed: result.cluster_totals.ae_rows_streamed,
            hints_evicted: result.cluster_totals.hints_evicted,
            relax_secs,
            relax_is_lower_bound,
            operations: result.stats.operations,
        };
        table.add_row(vec![
            row.arm.clone(),
            format!("{:.0}", row.throughput),
            format!("{:.1}%", row.stale_fraction * 100.0),
            format!("{:.1}%", row.hot_stale_fraction * 100.0),
            format!("{:.0}%", tolerance * 100.0),
            row.aborted_ops.to_string(),
            row.retries.to_string(),
            row.ae_rounds.to_string(),
            row.ae_rows_streamed.to_string(),
            row.hints_evicted.to_string(),
            format!(
                "{}{:.3}",
                if row.relax_is_lower_bound { ">=" } else { "" },
                row.relax_secs
            ),
        ]);
        rows.push(row);
    }
    println!("{table}");

    let no_repair = &rows[0];
    let repair = &rows[1];
    let with_retry = &rows[2];
    println!(
        "Post-heal relax time strictly shorter with repair armed: {} ({}{:.3}s vs {}{:.3}s)",
        if repair.relax_secs < no_repair.relax_secs && !repair.relax_is_lower_bound {
            "yes"
        } else {
            "NO"
        },
        if repair.relax_is_lower_bound {
            ">="
        } else {
            ""
        },
        repair.relax_secs,
        if no_repair.relax_is_lower_bound {
            ">="
        } else {
            ""
        },
        no_repair.relax_secs
    );
    println!(
        "Repair actually ran off the read path: {} ({} rounds, {} rows streamed)",
        if repair.ae_rounds > 0 { "yes" } else { "NO" },
        repair.ae_rounds,
        repair.ae_rows_streamed
    );
    println!(
        "Client retries converted partition aborts: {} ({} aborted with retries vs {} without)",
        if with_retry.aborted_ops < repair.aborted_ops || with_retry.retries > 0 {
            "yes"
        } else {
            "NO"
        },
        with_retry.aborted_ops,
        repair.aborted_ops
    );
    println!(
        "Hot-key stale rate within the {:.0}% tolerance in every arm: {}",
        tolerance * 100.0,
        if rows.iter().all(|r| r.hot_stale_fraction <= r.tolerance) {
            "yes"
        } else {
            "NO"
        }
    );

    if let Some(path) = json_arg(&args) {
        harmony_bench::report::write_json(&path, &rows).expect("write json");
        println!("JSON written to {}", path.display());
    }
}

//! Figure 4(b): the impact of network latency on the stale-read estimate.
//!
//! The paper runs workload A on Amazon EC2 (where latency is both higher and
//! more variable than on Grid'5000) and plots the estimated probability of a
//! stale read against the network latency observed at that moment, showing
//! that once latency reaches a few milliseconds it dominates the estimate
//! regardless of the access rates.
//!
//! The binary reproduces the panel two ways:
//!  1. analytically — sweeping the latency fed to the closed-form model for a
//!     set of workload-A-like access rates (the scatter envelope), and
//!  2. empirically — running workload A on the EC2 profile and reporting the
//!     (latency, estimate) pairs the controller actually observed.
//!
//! Usage: `cargo run --release -p harmony-bench --bin fig4b [-- --quick] [--json out.json]`

use harmony_adaptive::policy::HarmonyPolicy;
use harmony_bench::experiments::{ec2_experiment_config, scaled_workload_a};
use harmony_bench::report::{has_flag, json_arg, Table};
use harmony_model::staleness::{PropagationModel, StaleReadModel};
use harmony_ycsb::runner::{run_experiment, ExperimentSpec, Phase};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct LatencyPoint {
    source: String,
    latency_ms: f64,
    estimate: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_flag(&args, "--quick");
    let mut points = Vec::new();

    // Part 1: the analytic sweep (0 - 50 ms as on the paper's x-axis).
    let model = StaleReadModel::new(5);
    let propagation = PropagationModel::default();
    let mut table = Table::new(vec![
        "latency (ms)",
        "Pr(stale) @ 100/80 ops/s",
        "Pr(stale) @ 500/400 ops/s",
        "Pr(stale) @ 2k/1.5k ops/s",
    ]);
    for latency_ms in [0.5, 1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 30.0, 40.0, 50.0] {
        let tp = propagation.propagation_time_secs(latency_ms, 1024.0);
        let estimates: Vec<f64> = [(100.0, 80.0), (500.0, 400.0), (2_000.0, 1_500.0)]
            .iter()
            .map(|(r, w)| model.stale_probability(*r, *w, tp))
            .collect();
        for e in &estimates {
            points.push(LatencyPoint {
                source: "analytic".to_string(),
                latency_ms,
                estimate: *e,
            });
        }
        table.add_row(vec![
            format!("{latency_ms:.1}"),
            format!("{:.4}", estimates[0]),
            format!("{:.4}", estimates[1]),
            format!("{:.4}", estimates[2]),
        ]);
    }
    println!("Figure 4(b) — stale-read estimate vs network latency");
    println!("\nAnalytic sweep (closed-form Eq. 6, three workload-A-like rate pairs):");
    println!("{table}");

    // Part 2: measured during an EC2-profile run (spiky latency).
    let mut config = ec2_experiment_config();
    if quick {
        config.records = 4_000;
        config.min_operations = 8_000;
        config.operations_per_thread = 250;
    }
    let threads = 40;
    let spec = ExperimentSpec {
        workload: scaled_workload_a(config.records),
        phases: vec![Phase::new(threads, config.operations_for(threads))],
        seed: config.seed,
        dual_read_measurement: false,
        hot_key_prefix: 0,
        max_virtual_secs: 3_600.0,
    };
    let result = run_experiment(
        &config.profile,
        config.store.clone(),
        config.controller,
        Box::new(HarmonyPolicy::new(config.store.replication_factor, 1.0)),
        spec,
    );
    println!(
        "Observed on the EC2 profile ({} monitoring ticks):",
        result.decisions.len()
    );
    let mut observed = Table::new(vec!["t (s)", "latency (ms)", "Pr(stale)"]);
    for d in result.decisions.iter().filter(|d| d.estimate.is_some()) {
        points.push(LatencyPoint {
            source: "ec2-run".to_string(),
            latency_ms: d.latency_ms,
            estimate: d.estimate.unwrap_or(0.0),
        });
        observed.add_row(vec![
            format!("{:.1}", d.at.as_secs_f64()),
            format!("{:.2}", d.latency_ms),
            format!("{:.4}", d.estimate.unwrap_or(0.0)),
        ]);
    }
    println!("{observed}");
    println!(
        "Paper shape check: beyond a few milliseconds of latency the estimate saturates near its\n\
         ceiling for every rate pair — high latency dominates the probability of stale reads,\n\
         while at sub-millisecond latency the estimate is governed by the read/write rates."
    );

    if let Some(path) = json_arg(&args) {
        harmony_bench::report::write_json(&path, &points).expect("write json");
        println!("JSON written to {}", path.display());
    }
}

//! Figures 6(a) and 6(b): number of stale reads vs client threads.
//!
//! The paper measures staleness by issuing, for every workload read, a second
//! read at the strongest consistency level and comparing the returned
//! timestamps (§V.F). Harmony — at every tolerated-stale-read setting —
//! returns fewer stale reads than static eventual consistency, the stricter
//! setting fewer than the looser one, and strong consistency none at all.
//! With the stricter setting, the stale-read count *drops* beyond ~40 threads
//! because the estimate crosses the tolerance and the controller escalates
//! the consistency level for most of the run.
//!
//! Usage:
//!   cargo run --release -p harmony-bench --bin fig6_staleness -- --profile grid5000   # Figure 6(a)
//!   cargo run --release -p harmony-bench --bin fig6_staleness -- --profile ec2        # Figure 6(b)
//! Flags: `--quick`, `--dual-read` (use the paper's measurement method instead
//! of the simulator's ground truth), `--json <path>`.

use harmony_bench::experiments::{
    config_by_name, fig5_thread_counts, run_policy_sweep, PolicySpec,
};
use harmony_bench::report::{has_flag, json_arg, profile_arg, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile_name = profile_arg(&args, "grid5000");
    let quick = has_flag(&args, "--quick");
    let dual_read = has_flag(&args, "--dual-read");
    let mut config = config_by_name(&profile_name)
        .unwrap_or_else(|| panic!("unknown profile {profile_name} (use grid5000 or ec2)"));
    if quick {
        config.records = 4_000;
        config.operations_per_thread = 250;
        config.min_operations = 8_000;
    }
    let figure = if profile_name == "ec2" {
        "6(b)"
    } else {
        "6(a)"
    };
    let thread_counts = if quick {
        vec![1, 15, 40, 90]
    } else {
        fig5_thread_counts()
    };
    let policies = PolicySpec::paper_set(&config.profile);

    println!(
        "Figure {figure} — stale reads vs client threads ({} profile, RF = {}, measurement: {})",
        config.profile.name,
        config.store.replication_factor,
        if dual_read {
            "dual-read (paper §V.F)"
        } else {
            "simulator ground truth"
        }
    );
    let rows = run_policy_sweep(&config, &policies, &thread_counts, dual_read);

    let mut table = Table::new(
        std::iter::once("threads".to_string())
            .chain(policies.iter().map(|p| format!("{} stale", p.label())))
            .chain(std::iter::once("eventual stale %".to_string()))
            .collect::<Vec<_>>(),
    );
    for &threads in &thread_counts {
        let mut cells = vec![threads.to_string()];
        let mut eventual_fraction = 0.0;
        for policy in &policies {
            let row = rows
                .iter()
                .find(|r| r.threads == threads && r.policy == policy.label())
                .expect("row present");
            if policy.label() == "eventual" {
                eventual_fraction = row.stale_fraction;
            }
            cells.push(row.stale_reads.to_string());
        }
        cells.push(format!("{:.2}%", eventual_fraction * 100.0));
        table.add_row(cells);
    }
    println!("{table}");

    // The headline comparison the paper quotes from this figure.
    let strict = policies[1].label();
    let strict_total: u64 = rows
        .iter()
        .filter(|r| r.policy == strict)
        .map(|r| r.stale_reads)
        .sum();
    let eventual_total: u64 = rows
        .iter()
        .filter(|r| r.policy == "eventual")
        .map(|r| r.stale_reads)
        .sum();
    if eventual_total > 0 {
        println!(
            "Across the sweep, {strict} returned {:.0}% fewer stale reads than static eventual\n\
             consistency (paper reports ~80% for Harmony-20% on Grid'5000).",
            (1.0 - strict_total as f64 / eventual_total as f64) * 100.0
        );
    }
    println!(
        "Paper shape check: every Harmony setting sits below eventual consistency; the stricter\n\
         tolerance gives fewer stale reads; strong consistency gives zero."
    );

    if let Some(path) = json_arg(&args) {
        harmony_bench::report::write_json(&path, &rows).expect("write json");
        println!("JSON written to {}", path.display());
    }
}

//! Figure 4(a): the stale-read estimate over running time as the workload and
//! the number of client threads change.
//!
//! The paper runs YCSB workload A (heavy read-update) and workload B
//! (read-heavy) on Grid'5000, stepping the client thread count through
//! 90 → 70 → 40 → 15 → 1 within a single run, and plots the estimated
//! probability of stale reads over time. Workload B's estimate stays well
//! below workload A's, and the estimate drops with the thread count.
//!
//! Usage: `cargo run --release -p harmony-bench --bin fig4a [-- --quick] [--json out.json]`

use harmony_adaptive::policy::HarmonyPolicy;
use harmony_bench::experiments::{
    fig4a_thread_phases, grid5000_experiment_config, scaled_workload_a, scaled_workload_b,
};
use harmony_bench::report::{has_flag, json_arg, Table};
use harmony_ycsb::runner::{run_experiment, ExperimentSpec, Phase};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct TimelinePoint {
    workload: String,
    time_s: f64,
    estimate: f64,
    read_rate: f64,
    write_rate: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_flag(&args, "--quick");
    let mut config = grid5000_experiment_config();
    if quick {
        config.records = 4_000;
        config.operations_per_thread = 250;
        config.min_operations = 8_000;
    }

    println!(
        "Figure 4(a) — estimated probability of stale reads over running time (Grid'5000 profile)"
    );
    println!("Thread phases: {:?}\n", fig4a_thread_phases());

    let mut all_points = Vec::new();
    let mut table = Table::new(vec![
        "workload",
        "phase threads",
        "mean estimate",
        "max estimate",
    ]);
    for (name, workload) in [
        ("workload-A", scaled_workload_a(config.records)),
        ("workload-B", scaled_workload_b(config.records)),
    ] {
        let phases: Vec<Phase> = fig4a_thread_phases()
            .into_iter()
            .map(|threads| Phase::new(threads, config.operations_for(threads)))
            .collect();
        let spec = ExperimentSpec {
            workload,
            phases: phases.clone(),
            seed: config.seed,
            dual_read_measurement: false,
            hot_key_prefix: 0,
            max_virtual_secs: 3_600.0,
        };
        let result = run_experiment(
            &config.profile,
            config.store.clone(),
            config.controller,
            // Figure 4 observes the estimator itself; the 100%-tolerance
            // Harmony policy computes the estimate while always reading at ONE
            // (i.e. the static eventual consistency the paper estimates for).
            Box::new(HarmonyPolicy::new(config.store.replication_factor, 1.0)),
            spec,
        );

        // The per-tick estimate timeline (the curve of Figure 4a).
        for d in &result.decisions {
            all_points.push(TimelinePoint {
                workload: name.to_string(),
                time_s: d.at.as_secs_f64(),
                estimate: d.estimate.unwrap_or(0.0),
                read_rate: d.read_rate,
                write_rate: d.write_rate,
            });
        }

        // Summarise per phase by slicing the decision timeline at phase ends.
        let mut phase_start = 0.0f64;
        for (phase, pr) in phases.iter().zip(result.phase_results.iter()) {
            let phase_end = pr.stats.ended_at.as_secs_f64();
            let estimates: Vec<f64> = result
                .decisions
                .iter()
                .filter(|d| d.at.as_secs_f64() > phase_start && d.at.as_secs_f64() <= phase_end)
                .filter_map(|d| d.estimate)
                .collect();
            let mean = if estimates.is_empty() {
                0.0
            } else {
                estimates.iter().sum::<f64>() / estimates.len() as f64
            };
            let max = estimates.iter().cloned().fold(0.0f64, f64::max);
            table.add_row(vec![
                name.to_string(),
                phase.threads.to_string(),
                format!("{mean:.4}"),
                format!("{max:.4}"),
            ]);
            phase_start = phase_end;
        }
    }

    println!("{table}");
    println!("Estimate timeline (time s, estimate) per workload:");
    for point in all_points.iter().filter(|p| p.estimate > 0.0).take(200) {
        println!(
            "  {:<11} t={:>8.2}s  Pr(stale)={:.4}  (λr={:.0}/s, λw={:.0}/s)",
            point.workload, point.time_s, point.estimate, point.read_rate, point.write_rate
        );
    }
    println!(
        "\nPaper shape check: at comparable access rates workload B's estimate stays below\n\
         workload A's (far fewer updates), and for workload A the estimate decreases as the\n\
         thread count — and with it the write rate — steps down through the phases."
    );

    if let Some(path) = json_arg(&args) {
        harmony_bench::report::write_json(&path, &all_points).expect("write json");
        println!("JSON timeline written to {}", path.display());
    }
}

//! Figures 5(c) and 5(d): overall throughput vs client threads.
//!
//! Same sweep as the latency figures, reporting operations per second.
//! The paper observes throughput growing with the thread count, rolling off
//! once there are more client threads than the hosts can serve concurrently,
//! with strong consistency noticeably below the other policies and Harmony
//! close to static eventual consistency.
//!
//! Usage:
//!   cargo run --release -p harmony-bench --bin fig5_throughput -- --profile grid5000   # Figure 5(c)
//!   cargo run --release -p harmony-bench --bin fig5_throughput -- --profile ec2        # Figure 5(d)
//! Flags: `--quick`, `--json <path>`.

use harmony_bench::experiments::{
    config_by_name, fig5_thread_counts, run_policy_sweep, PolicySpec,
};
use harmony_bench::report::{has_flag, json_arg, profile_arg, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile_name = profile_arg(&args, "grid5000");
    let quick = has_flag(&args, "--quick");
    let mut config = config_by_name(&profile_name)
        .unwrap_or_else(|| panic!("unknown profile {profile_name} (use grid5000 or ec2)"));
    if quick {
        config.records = 4_000;
        config.operations_per_thread = 250;
        config.min_operations = 8_000;
    }
    let figure = if profile_name == "ec2" {
        "5(d)"
    } else {
        "5(c)"
    };
    let thread_counts = if quick {
        vec![1, 15, 40, 90]
    } else {
        fig5_thread_counts()
    };
    let policies = PolicySpec::paper_set(&config.profile);

    println!(
        "Figure {figure} — throughput vs client threads ({} profile, RF = {})",
        config.profile.name, config.store.replication_factor
    );
    let rows = run_policy_sweep(&config, &policies, &thread_counts, false);

    let mut table = Table::new(
        std::iter::once("threads".to_string())
            .chain(policies.iter().map(|p| format!("{} (ops/s)", p.label())))
            .collect::<Vec<_>>(),
    );
    for &threads in &thread_counts {
        let mut cells = vec![threads.to_string()];
        for policy in &policies {
            let row = rows
                .iter()
                .find(|r| r.threads == threads && r.policy == policy.label())
                .expect("row present");
            cells.push(format!("{:.0}", row.throughput));
        }
        table.add_row(cells);
    }
    println!("{table}");

    // The headline comparison the paper quotes from this figure: Harmony's
    // throughput gain over strong consistency at high concurrency.
    let at = *thread_counts.iter().max().unwrap();
    let harmony_label = policies[0].label();
    let harmony_tp = rows
        .iter()
        .find(|r| r.threads == at && r.policy == harmony_label)
        .map(|r| r.throughput)
        .unwrap_or(0.0);
    let strong_tp = rows
        .iter()
        .find(|r| r.threads == at && r.policy == "strong")
        .map(|r| r.throughput)
        .unwrap_or(1.0);
    println!(
        "At {at} threads, {harmony_label} delivers {:.0}% higher throughput than strong consistency\n\
         (paper reports ~45% for its settings).",
        (harmony_tp / strong_tp - 1.0) * 100.0
    );
    println!(
        "Paper shape check: throughput rises with threads and flattens/rolls off at high thread\n\
         counts; strong consistency is the lowest curve; Harmony is comparable to eventual."
    );

    if let Some(path) = json_arg(&args) {
        harmony_bench::report::write_json(&path, &rows).expect("write json");
        println!("JSON written to {}", path.display());
    }
}

//! Scaling sweep: the multi-core sharded runtime's throughput curve over
//! shard counts, with a keyspace-size memory probe.
//!
//! Pushes the same total workload (the throughput-oriented
//! [`harmony_bench::baseline::scaling_spec`] — read-heavy YCSB-B, RF 3,
//! eventual reads) through `run_sharded_experiment` at each shard count and
//! reports aggregate simulated-ops per wall-clock second, ops/sec/shard,
//! and the peak heap in use during each point (from a byte-counting global
//! allocator, so the 10M-record keyspace claim is a measured number rather
//! than an estimate).
//!
//! Usage:
//!   cargo run --release -p harmony-bench --bin scaling_sweep
//!   cargo run --release -p harmony-bench --bin scaling_sweep -- \
//!       --quick --check BENCH_e2e.json --tolerance 0.2
//!
//! Flags:
//!   `--quick`            shard counts 1/2/4 with the CI-sized workload
//!                        (60k ops over 4k records — exactly the scaling
//!                        section `bench_baseline` commits, so `--check`
//!                        compares like with like)
//!   `--records <n>`      override the keyspace size (the full sweep
//!                        defaults to a million records; each shard loads
//!                        only its stripe; pass 10000000 for the ROADMAP's
//!                        big-keyspace memory probe — load-dominated, read
//!                        the peak-heap column rather than ops/s)
//!   `--shards <list>`    comma-separated shard counts to run
//!   `--ops <n>`          override the operation count per point
//!   `--iters <n>`        wall-clock iterations per point, best kept
//!                        (default 3, or 1 for keyspaces over 100k records)
//!   `--check <path>`     compare each shard count's ops/sec/shard against
//!                        the committed `BENCH_e2e.json` scaling section
//!                        and exit non-zero on a regression beyond the
//!                        tolerance — per-shard, not just aggregate, so a
//!                        slowdown hidden by adding shards still fails
//!   `--tolerance <f>`    allowed fractional regression (default 0.2)

use harmony_bench::baseline::{
    measure_scaling_point, peak_bytes, reset_peak, BenchBaseline, ScalingPoint, TrackingAllocator,
};
use harmony_bench::report::has_flag;

// The shared tracking allocator (bytes in use + peak): same accounting
// overhead as `bench_baseline`, which writes the baseline this binary's
// `--check` gate compares against.
#[global_allocator]
static ALLOCATOR: TrackingAllocator = TrackingAllocator;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_flag(&args, "--quick");
    let shard_counts: Vec<usize> = flag_value(&args, "--shards")
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().parse().expect("--shards takes a comma list"))
                .collect()
        })
        .unwrap_or(if quick {
            vec![1, 2, 4]
        } else {
            vec![1, 2, 4, 8]
        });
    let operations: u64 = flag_value(&args, "--ops")
        .map(|v| v.parse().expect("--ops takes an integer"))
        .unwrap_or(if quick { 60_000 } else { 240_000 });
    let records: u64 = flag_value(&args, "--records")
        .map(|v| v.parse().expect("--records takes an integer"))
        .unwrap_or(if quick { 4_000 } else { 1_000_000 });
    let check = flag_value(&args, "--check");
    let tolerance: f64 = flag_value(&args, "--tolerance")
        .map(|t| t.parse().expect("--tolerance takes a fraction"))
        .unwrap_or(0.2);

    println!(
        "Scaling sweep — {} ops over {} records per point, shards {:?}\n",
        operations, records, shard_counts
    );

    let mut table = harmony_bench::report::Table::new(vec![
        "shards",
        "wall s",
        "ops",
        "ops/s (wall)",
        "ops/s/shard",
        "peak heap MiB",
        "stale %",
    ]);
    let mut points: Vec<ScalingPoint> = Vec::new();
    // Best-of-N wall clock per point: cold first iterations would flap the
    // 20% CI gate. Big keyspaces run once — the load phase dominates and
    // the interesting column there is memory, not ops/s.
    let iters: usize = flag_value(&args, "--iters")
        .map(|v| v.parse().expect("--iters takes an integer"))
        .unwrap_or(if records <= 100_000 { 3 } else { 1 });
    for &shards in &shard_counts {
        eprintln!("running shards={shards}...");
        let floor = reset_peak();
        let (point, result) = measure_scaling_point(shards, operations, records, iters);
        let point_peak = peak_bytes().saturating_sub(floor);
        table.add_row(vec![
            shards.to_string(),
            format!("{:.2}", point.wall_secs),
            point.operations.to_string(),
            format!("{:.0}", point.ops_per_sec_wall),
            format!("{:.0}", point.ops_per_sec_per_shard),
            format!("{:.1}", point_peak as f64 / (1024.0 * 1024.0)),
            format!("{:.2}", result.stats.stale_fraction() * 100.0),
        ]);
        points.push(point);
        // The run result (histograms, decision log) is dropped here so the
        // next point's memory baseline starts clean.
    }
    println!("{table}");

    let Some(baseline_path) = check else { return };
    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    let baseline: BenchBaseline = serde_json::from_str(&text).expect("parse committed baseline");

    // Context first: how the sharded aggregate compares with the committed
    // single-thread headline number.
    if let Some(best) = points
        .iter()
        .map(|p| p.ops_per_sec_wall)
        .fold(None, |m: Option<f64>, v| Some(m.map_or(v, |m| m.max(v))))
    {
        println!(
            "Best aggregate {:.0} ops/s = {:.2}x the committed overall baseline ({:.0} ops/s)",
            best,
            best / baseline.total_ops_per_sec_wall.max(1e-9),
            baseline.total_ops_per_sec_wall
        );
    }

    // The gate: ops/sec/shard per shard count, so adding shards can never
    // mask a per-shard slowdown.
    let mut failed = false;
    for point in &points {
        let Some(committed) = baseline.scaling_for(point.shards) else {
            println!(
                "shards={}: no committed scaling point, skipping check",
                point.shards
            );
            continue;
        };
        let floor = committed.ops_per_sec_per_shard * (1.0 - tolerance);
        let verdict = if point.ops_per_sec_per_shard < floor {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "shards={}: measured {:.0} ops/s/shard vs committed {:.0} (floor {:.0}) — {}",
            point.shards,
            point.ops_per_sec_per_shard,
            committed.ops_per_sec_per_shard,
            floor,
            verdict
        );
    }
    if failed {
        eprintln!("FAIL: per-shard throughput regressed beyond the tolerance");
        std::process::exit(1);
    }
    println!("OK: all shard counts within tolerance");
}

//! Proactive (predicted-wait) control against the reactive baseline.
//!
//! Two step-response scenarios, each run twice with byte-identical inputs —
//! once with the reactive figure controller and once with the same
//! controller plus proactive control (`enable_proactive`), so every
//! difference in the table is the prediction term and nothing else:
//!
//! * `load-step` — the thread count jumps mid-run (a workload phase change,
//!   Figure 4(a) style). The reactive controller only reacts once the
//!   backlog dispersion *materialises*; the proactive one widens its window
//!   from the M/G/1 predicted wait while the queues are still filling, so
//!   the stale spike over the transition shrinks.
//! * `crash-step` — a replica crashes mid-run and restarts later. The table
//!   reports the escalation lag: how many monitoring periods after the
//!   crash each controller takes to leave cheap reads. The proactive
//!   controller sees the post-crash utilisation jump in the *predicted*
//!   wait one period before the measured trend rebuilds (the monitor
//!   segments its trend histories on topology changes, so the reactive
//!   detector restarts from scratch).
//!
//! Usage:
//!   cargo run --release -p harmony-bench --bin proactive_sweep
//!   cargo run --release -p harmony-bench --bin proactive_sweep -- --quick
//! Flags: `--quick`, `--json <path>`, `--profile <grid5000|ec2>`.

use harmony_bench::experiments::{
    config_by_name, enable_proactive, scaled_workload_a, ExperimentConfig, PolicySpec,
};
use harmony_bench::report::{has_flag, json_arg, profile_arg, Table};
use harmony_chaos::FaultSchedule;
use harmony_sim::topology::NodeId;
use harmony_ycsb::runner::{run_experiment_with_faults, ExperimentResult, ExperimentSpec, Phase};
use serde::Serialize;

/// One (scenario, controller) sweep point.
#[derive(Debug, Clone, Serialize)]
struct ProactiveRow {
    scenario: String,
    controller: String,
    throughput: f64,
    stale_fraction: f64,
    stale_reads: u64,
    /// Stale fraction restricted to the high (post-step) phases of the
    /// load-step scenario — the phase-change spike itself, separated from
    /// the low phases where proactive control deliberately relaxes earlier
    /// on predicted drain (`None` for single-phase scenarios).
    step_stale_fraction: Option<f64>,
    /// First escalated tick at/after the step, in monitoring periods from
    /// the step time (`None` = never escalated; only the crash scenario
    /// injects a step the lag is measured against).
    escalation_lag_periods: Option<f64>,
    operations: u64,
}

/// Stale fraction over the phases run with `threads` client threads.
fn phase_stale_fraction(result: &ExperimentResult, threads: usize) -> Option<f64> {
    let (stale, reads) = result
        .phase_results
        .iter()
        .filter(|p| p.phase.threads == threads)
        .fold((0u64, 0u64), |(s, r), p| {
            (s + p.stats.stale_reads, r + p.stats.reads)
        });
    (reads > 0).then(|| stale as f64 / reads as f64)
}

fn run(
    config: &ExperimentConfig,
    proactive: bool,
    phases: Vec<Phase>,
    faults: FaultSchedule,
) -> ExperimentResult {
    let controller = if proactive {
        enable_proactive(config.controller)
    } else {
        config.controller
    };
    let policy = PolicySpec::Harmony(config.profile.harmony_settings[0]);
    let spec = ExperimentSpec {
        workload: scaled_workload_a(config.records),
        phases,
        seed: config.seed,
        dual_read_measurement: false,
        hot_key_prefix: 0,
        max_virtual_secs: 3_600.0,
    };
    run_experiment_with_faults(
        &config.profile,
        config.store.clone(),
        controller,
        policy.build(config.store.replication_factor),
        spec,
        faults,
    )
}

/// Monitoring periods between `step_secs` and the first decision at/after it
/// that escalated reads above ONE (or flagged divergence).
fn escalation_lag(result: &ExperimentResult, step_secs: f64, interval_secs: f64) -> Option<f64> {
    let step = harmony_sim::clock::SimTime::from_secs_f64(step_secs);
    result
        .decisions
        .iter()
        .find(|d| d.at >= step && (d.replicas_in_read > 1 || d.diverging))
        .map(|d| (d.at.as_secs_f64() - step_secs) / interval_secs)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile_name = profile_arg(&args, "grid5000");
    let quick = has_flag(&args, "--quick");
    let mut config = config_by_name(&profile_name)
        .unwrap_or_else(|| panic!("unknown profile {profile_name} (grid5000|ec2)"));
    if quick {
        config.records = 4_000;
        config.operations_per_thread = 300;
        config.min_operations = 9_000;
    }
    // Push the write stage near saturation so a step has headroom to cross
    // it: two service slots and slower mutations, as in the fault-tolerance
    // relax test.
    config.store.node_concurrency = 2;
    config.store.write_service_ms = 0.6;
    let interval_secs = config.controller.monitor.interval_secs;

    println!(
        "Proactive vs reactive step response — {} profile, RF = {}, monitoring period {} ms",
        config.profile.name,
        config.store.replication_factor,
        interval_secs * 1e3
    );

    // Load step: a calm low phase, then the thread count jumps (Figure 4(a)
    // style). Each phase must span several monitoring windows — the sliding
    // 250 ms rate window cannot resolve steps shorter than itself — so the
    // high phase gets the bulk of the operations. The spike the table
    // isolates is the stale rate of the high (post-step) phase.
    let (low, high) = (15, 110);
    let load_phases = || {
        vec![
            Phase::new(low, config.min_operations / 3),
            Phase::new(high, 2 * config.min_operations / 3),
        ]
    };

    // Crash step: times calibrated from a reactive no-faults baseline, like
    // the fault sweep.
    let baseline = run(&config, false, load_phases(), FaultSchedule::empty());
    // The crash scenario runs at a calmer load than the phase change: the
    // pre-crash regime sits comfortably inside the tolerance, so the first
    // escalation is the controller's response to the fault, not to the
    // workload itself. The fault is a correlated half-cluster outage (every
    // other node, so every key keeps live replicas): halving the capacity
    // at once steps the per-replica arrival rate past saturation, which is
    // exactly the signal the predicted wait sees one period before the
    // measured backlog trend rebuilds.
    let single = vec![Phase::new(16, config.operations_for(16))];
    let crash_baseline = run(&config, false, single.clone(), FaultSchedule::empty());
    let duration = crash_baseline.stats.duration_secs().max(0.2);
    let crash_at = duration * 0.3;
    let restart_at = duration * 0.65;
    let outage: Vec<NodeId> = (0..10).map(|i| NodeId(2 * i + 1)).collect();
    let crash_schedule = || {
        let mut schedule = FaultSchedule::empty();
        for &node in &outage {
            schedule = schedule
                .crash_at(crash_at, node)
                .restart_at(restart_at, node);
        }
        schedule
    };

    let mut rows: Vec<ProactiveRow> = Vec::new();
    let mut table = Table::new(vec![
        "scenario".to_string(),
        "controller".to_string(),
        "ops/s".to_string(),
        "stale %".to_string(),
        "step stale %".to_string(),
        "stale reads".to_string(),
        "lag (periods)".to_string(),
    ]);

    let scenarios: Vec<(&str, Vec<Phase>, FaultSchedule, Option<f64>)> = vec![
        ("load-step", load_phases(), FaultSchedule::empty(), None),
        (
            "crash-step",
            single.clone(),
            crash_schedule(),
            Some(crash_at),
        ),
    ];
    let mut spike_shrinks = true;
    let mut proactive_leads = true;

    for (name, phases, faults, step_secs) in scenarios {
        let mut lags: Vec<Option<f64>> = Vec::new();
        for proactive in [false, true] {
            let result = if name == "load-step" && !proactive {
                baseline.clone()
            } else {
                run(&config, proactive, phases.clone(), faults.clone())
            };
            if has_flag(&args, "--debug") && name == "crash-step" {
                eprintln!("--- {name} proactive={proactive} (crash {crash_at:.3}s restart {restart_at:.3}s)");
                for d in &result.decisions {
                    eprintln!(
                        "t={:.3} util={:.3} div={} repl={} est={:?} pred_ms={:.4} spread_ms={:.4} backlog_ms={:.4}",
                        d.at.as_secs_f64(),
                        d.utilization,
                        d.diverging,
                        d.replicas_in_read,
                        d.estimate,
                        d.predicted_wait_ms,
                        d.backlog_spread_ms,
                        d.backlog_ms,
                    );
                }
            }
            let lag = step_secs.and_then(|s| escalation_lag(&result, s, interval_secs));
            lags.push(lag);
            let step_stale = (name == "load-step")
                .then(|| phase_stale_fraction(&result, high))
                .flatten();
            let row = ProactiveRow {
                scenario: name.to_string(),
                controller: if proactive { "proactive" } else { "reactive" }.to_string(),
                throughput: result.throughput(),
                stale_fraction: result.stats.stale_fraction(),
                stale_reads: result.stats.stale_reads,
                step_stale_fraction: step_stale,
                escalation_lag_periods: lag,
                operations: result.stats.operations,
            };
            table.add_row(vec![
                row.scenario.clone(),
                row.controller.clone(),
                format!("{:.0}", row.throughput),
                format!("{:.2}%", row.stale_fraction * 100.0),
                step_stale.map_or("-".to_string(), |s| format!("{:.2}%", s * 100.0)),
                row.stale_reads.to_string(),
                lag.map_or("-".to_string(), |l| format!("{l:.1}")),
            ]);
            rows.push(row);
        }
        let pair: Vec<&ProactiveRow> = rows.iter().rev().take(2).collect();
        // pair[0] = proactive, pair[1] = reactive.
        if name == "load-step" {
            // The claim is about the phase-change spike: staleness in the
            // high phases, where the up-step lands. The low phases trade
            // the other way by design (earlier relax on predicted drain),
            // within the tolerance either way.
            spike_shrinks = match (pair[0].step_stale_fraction, pair[1].step_stale_fraction) {
                (Some(p), Some(r)) => p <= r,
                _ => false,
            };
        } else {
            proactive_leads = match (lags[1], lags[0]) {
                (Some(p), Some(r)) => p + 1.0 <= r,
                (Some(_), None) => true,
                _ => false,
            };
        }
    }

    println!("{table}");
    println!(
        "Phase-change stale spike (high-phase stale rate) shrinks under proactive control: {}",
        if spike_shrinks { "yes" } else { "NO" }
    );
    println!(
        "Proactive escalates at least one monitoring period before reactive after the crash: {}",
        if proactive_leads { "yes" } else { "NO" }
    );
    println!(
        "Shape check: both controllers run byte-identical inputs, so the stale and lag\n\
         deltas isolate the prediction term; with proactive disabled the controller is\n\
         byte-identical to reactive (pinned in tests/per_key_determinism.rs)."
    );

    if let Some(path) = json_arg(&args) {
        harmony_bench::report::write_json(&path, &rows).expect("write json");
        println!("JSON written to {}", path.display());
    }
}

//! Figure 5(c)/(d), saturation regime: throughput vs client threads across
//! the 5-60 thread sweep, focusing on the band *around and past* the
//! write-stage saturation knee where the scalar (backlog-folded) staleness
//! model used to collapse Harmony onto the strong-consistency baseline.
//!
//! With the queueing-aware model the controller distinguishes a high but
//! stable mutation backlog (narrow queue-wait spread — cheap reads stay
//! safe) from a diverging queue (go strong), so the paper's throughput gap
//! over strong consistency persists across the whole sweep.
//!
//! Usage:
//!   cargo run --release -p harmony-bench --bin fig5_saturation -- --profile grid5000
//!   cargo run --release -p harmony-bench --bin fig5_saturation -- --profile ec2
//! Flags: `--quick`, `--json <path>`.

use harmony_bench::experiments::{config_by_name, run_policy_sweep, PolicySpec};
use harmony_bench::report::{has_flag, json_arg, profile_arg, Table};

/// The saturation-focused thread sweep: dense around the knee, extending past
/// it (the classic Figure 5 sweep jumps 40 → 70; the gap's fate is decided in
/// between).
pub fn saturation_thread_counts() -> Vec<usize> {
    vec![5, 10, 15, 20, 30, 40, 50, 60]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile_name = profile_arg(&args, "grid5000");
    let quick = has_flag(&args, "--quick");
    let mut config = config_by_name(&profile_name)
        .unwrap_or_else(|| panic!("unknown profile {profile_name} (use grid5000 or ec2)"));
    if quick {
        config.records = 4_000;
        config.operations_per_thread = 250;
        config.min_operations = 6_000;
    }
    let thread_counts = if quick {
        vec![5, 20, 40]
    } else {
        saturation_thread_counts()
    };
    // The saturation question is Harmony vs the two static baselines.
    let policies = vec![
        PolicySpec::Harmony(config.profile.harmony_settings[1]),
        PolicySpec::Eventual,
        PolicySpec::Strong,
    ];
    let harmony_label = policies[0].label();

    println!(
        "Figure 5(c)/(d) saturation regime — throughput vs client threads ({} profile, RF = {})",
        config.profile.name, config.store.replication_factor
    );
    let rows = run_policy_sweep(&config, &policies, &thread_counts, false);

    let mut table = Table::new(vec![
        "threads".to_string(),
        format!("{harmony_label} (ops/s)"),
        "eventual (ops/s)".to_string(),
        "strong (ops/s)".to_string(),
        "gain over strong".to_string(),
        "harmony stale %".to_string(),
    ]);
    let row_for = |threads: usize, label: &str| {
        rows.iter()
            .find(|r| r.threads == threads && r.policy == label)
            .expect("row present")
    };
    let mut min_gain = f64::INFINITY;
    for &threads in &thread_counts {
        let harmony = row_for(threads, &harmony_label);
        let eventual = row_for(threads, "eventual");
        let strong = row_for(threads, "strong");
        let gain = harmony.throughput / strong.throughput.max(1e-9) - 1.0;
        min_gain = min_gain.min(gain);
        table.add_row(vec![
            threads.to_string(),
            format!("{:.0}", harmony.throughput),
            format!("{:.0}", eventual.throughput),
            format!("{:.0}", strong.throughput),
            format!("{:+.0}%", gain * 100.0),
            format!("{:.1}%", harmony.stale_fraction * 100.0),
        ]);
    }
    println!("{table}");
    println!(
        "Minimum {harmony_label} gain over strong across the sweep: {:+.0}%",
        min_gain * 100.0
    );
    println!(
        "Paper shape check: the gap over strong consistency persists past the saturation knee\n\
         (the scalar backlog-folded estimate used to collapse it to ~0 beyond ~20 threads),\n\
         while Harmony's stale fraction stays within its tolerated rate."
    );

    if let Some(path) = json_arg(&args) {
        harmony_bench::report::write_json(&path, &rows).expect("write json");
        println!("JSON written to {}", path.display());
    }
}

//! Wall-clock performance baseline: the headline and Figure 5 saturation
//! sweeps timed against the real clock, with an allocations-per-operation
//! estimate from a counting global allocator.
//!
//! Every other binary in this crate reports *virtual*-time results — the
//! discrete-event clock advances however long the simulated cluster needs,
//! regardless of how fast the simulator itself runs. This binary pins the
//! complementary number: how many simulated operations per *wall-clock*
//! second the engine sustains, which is what hot-path optimisations
//! (key interning, placement caching, shared payloads) actually move.
//!
//! The sweeps are the `--quick` variants of `headline` and
//! `fig5_saturation`, so a run finishes in well under a minute and the
//! committed baseline is directly comparable with the CI smoke run.
//!
//! Usage:
//!   cargo run --release -p harmony-bench --bin bench_baseline
//!   cargo run --release -p harmony-bench --bin bench_baseline -- \
//!       --out BENCH_e2e.json --check BENCH_e2e.json --tolerance 0.2
//!
//! Flags:
//!   `--quick`            accepted for CI symmetry (the sweeps are always the
//!                        quick variants; the flag changes nothing)
//!   `--out <path>`       where to write the JSON report (default
//!                        `BENCH_e2e.json` in the current directory)
//!   `--check <path>`     compare against a previously committed report and
//!                        exit non-zero if overall wall-clock ops/sec
//!                        regressed by more than the tolerance
//!   `--tolerance <f>`    allowed fractional regression for `--check`
//!                        (default 0.2, i.e. 20%)
//!   `--history <path>`   append this run's headline to the wall-clock
//!                        history file (default `BENCH_history.json`; pass
//!                        `--history none` to skip)
//!   `--obs-overhead-check`  run ONLY the observability overhead gate: time
//!                        the headline sweep observed (default `ObsConfig::
//!                        enabled()` sampling) vs unobserved, best-of-3
//!                        alternating rounds, and exit non-zero if the
//!                        observed arm is more than `--obs-tolerance`
//!                        (default 0.03, i.e. 3%) slower

use harmony_bench::baseline::{
    allocation_calls, append_history, measure_scaling_point, BenchBaseline, ScalingPoint,
    SweepBaseline, TrackingAllocator,
};
use harmony_bench::experiments::{
    config_by_name, run_point, run_point_with_obs, ExperimentConfig, PolicySpec,
};
use harmony_bench::report::has_flag;
use harmony_ycsb::ObsConfig;
use std::time::Instant;

// The shared tracking allocator: identical accounting overhead to
// `scaling_sweep`, so the per-shard gate compares like with like.
#[global_allocator]
static ALLOCATOR: TrackingAllocator = TrackingAllocator;

/// The points of one sweep: `(profile, policy, threads)`.
type SweepPoint = (ExperimentConfig, PolicySpec, usize);

fn quick_scaled(profile: &str, min_operations: u64) -> ExperimentConfig {
    let mut config = config_by_name(profile).expect("known profile");
    config.records = 4_000;
    config.operations_per_thread = 250;
    config.min_operations = min_operations;
    config
}

/// The `headline --quick` points: both platforms, the platform's strict
/// Harmony setting against the two static baselines at a busy thread count.
fn headline_points() -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for profile in ["grid5000", "ec2"] {
        let config = quick_scaled(profile, 8_000);
        let strict = config.profile.harmony_settings[0];
        for policy in [
            PolicySpec::Harmony(strict),
            PolicySpec::Eventual,
            PolicySpec::Strong,
        ] {
            points.push((config.clone(), policy, 40));
        }
    }
    points
}

/// The `fig5_saturation --quick` points: Harmony's relaxed setting against
/// the static baselines across the quick thread sweep.
fn fig5_points() -> Vec<SweepPoint> {
    let config = quick_scaled("grid5000", 6_000);
    let relaxed = config.profile.harmony_settings[1];
    let mut points = Vec::new();
    for policy in [
        PolicySpec::Harmony(relaxed),
        PolicySpec::Eventual,
        PolicySpec::Strong,
    ] {
        for threads in [5usize, 20, 40] {
            points.push((config.clone(), policy, threads));
        }
    }
    points
}

fn run_sweep(name: &str, points: &[SweepPoint]) -> SweepBaseline {
    let mut read_latency = harmony_ycsb::stats::LatencyHistogram::new();
    let mut operations = 0u64;
    let allocs_before = allocation_calls();
    let started = Instant::now();
    for (config, policy, threads) in points {
        let result = run_point(config, policy, *threads, false);
        operations += result.stats.operations;
        read_latency.merge(&result.stats.read_latency);
    }
    let wall_secs = started.elapsed().as_secs_f64();
    let allocations = allocation_calls().saturating_sub(allocs_before);
    SweepBaseline {
        name: name.to_string(),
        wall_secs,
        operations,
        ops_per_sec_wall: operations as f64 / wall_secs.max(1e-9),
        read_p50_ms: read_latency.percentile_ms(0.50),
        read_p99_ms: read_latency.percentile_ms(0.99),
        allocations,
        allocations_per_op: allocations as f64 / operations.max(1) as f64,
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone())
}

/// The observability overhead gate: the headline sweep timed with the obs
/// layer fully on (default sampling) against the plain form, best-of-N
/// alternating rounds so machine noise hits both arms symmetrically.
/// Returns the measured fractional overhead (negative = observed was
/// faster, i.e. pure noise).
fn measure_obs_overhead(rounds: usize) -> f64 {
    let points = headline_points();
    let mut best_plain_ops_per_sec = 0f64;
    let mut best_obs_ops_per_sec = 0f64;
    for round in 1..=rounds {
        let started = Instant::now();
        let mut operations = 0u64;
        for (config, policy, threads) in &points {
            operations += run_point(config, policy, *threads, false).stats.operations;
        }
        let plain = operations as f64 / started.elapsed().as_secs_f64().max(1e-9);

        let started = Instant::now();
        let mut obs_operations = 0u64;
        for (config, policy, threads) in &points {
            let (result, report) =
                run_point_with_obs(config, policy, *threads, false, ObsConfig::enabled());
            obs_operations += result.stats.operations;
            // Touch the report so the exporter work cannot be optimised out.
            assert!(!report.prometheus_text().is_empty());
        }
        let observed = obs_operations as f64 / started.elapsed().as_secs_f64().max(1e-9);

        assert_eq!(
            operations, obs_operations,
            "the observed arm must simulate the identical run"
        );
        best_plain_ops_per_sec = best_plain_ops_per_sec.max(plain);
        best_obs_ops_per_sec = best_obs_ops_per_sec.max(observed);
        println!("round {round}/{rounds}: plain {plain:.0} ops/s, observed {observed:.0} ops/s");
    }
    1.0 - best_obs_ops_per_sec / best_plain_ops_per_sec
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The sweeps *are* the quick variants; the flag exists so CI can invoke
    // this binary uniformly with the other sweep smokes.
    let _ = has_flag(&args, "--quick");

    if has_flag(&args, "--obs-overhead-check") {
        let tolerance: f64 = flag_value(&args, "--obs-tolerance")
            .map(|t| t.parse().expect("--obs-tolerance takes a fraction"))
            .unwrap_or(0.03);
        println!(
            "Observability overhead gate — headline sweep, observed (default sampling) vs plain\n"
        );
        let overhead = measure_obs_overhead(3);
        println!(
            "\nBest-of-3 overhead: {:.2}% (tolerance {:.0}%)",
            overhead * 100.0,
            tolerance * 100.0
        );
        if overhead > tolerance {
            eprintln!("FAIL: enabled observability costs more than the tolerated throughput");
            std::process::exit(1);
        }
        println!("OK: enabled observability is within the overhead budget");
        return;
    }

    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_e2e.json".to_string());
    let check = flag_value(&args, "--check");
    let tolerance: f64 = flag_value(&args, "--tolerance")
        .map(|t| t.parse().expect("--tolerance takes a fraction"))
        .unwrap_or(0.2);

    println!("Wall-clock baseline — headline + fig5 saturation (quick sweeps)\n");
    let sweeps = vec![
        run_sweep("headline-quick", &headline_points()),
        run_sweep("fig5-saturation-quick", &fig5_points()),
    ];

    // The scaling section: the same quick scaling workload `scaling_sweep`
    // runs, at the shard counts its CI gate checks per-shard.
    let scaling: Vec<ScalingPoint> = [1usize, 2, 4]
        .iter()
        .map(|&shards| measure_scaling_point(shards, 60_000, 4_000, 3).0)
        .collect();

    let total_operations: u64 = sweeps.iter().map(|s| s.operations).sum();
    let total_wall_secs: f64 = sweeps.iter().map(|s| s.wall_secs).sum();
    let report = BenchBaseline {
        version: 2,
        total_operations,
        total_wall_secs,
        total_ops_per_sec_wall: total_operations as f64 / total_wall_secs.max(1e-9),
        sweeps,
        scaling,
    };

    let mut table = harmony_bench::report::Table::new(vec![
        "sweep",
        "wall s",
        "ops",
        "ops/s (wall)",
        "p50 ms",
        "p99 ms",
        "allocs/op",
    ]);
    for s in &report.sweeps {
        table.add_row(vec![
            s.name.clone(),
            format!("{:.2}", s.wall_secs),
            s.operations.to_string(),
            format!("{:.0}", s.ops_per_sec_wall),
            format!("{:.2}", s.read_p50_ms),
            format!("{:.2}", s.read_p99_ms),
            format!("{:.1}", s.allocations_per_op),
        ]);
    }
    println!("{table}");

    let mut scale_table = harmony_bench::report::Table::new(vec![
        "shards",
        "wall s",
        "ops",
        "ops/s (wall)",
        "ops/s/shard",
    ]);
    for p in &report.scaling {
        scale_table.add_row(vec![
            p.shards.to_string(),
            format!("{:.2}", p.wall_secs),
            p.operations.to_string(),
            format!("{:.0}", p.ops_per_sec_wall),
            format!("{:.0}", p.ops_per_sec_per_shard),
        ]);
    }
    println!("{scale_table}");
    println!(
        "Overall: {} operations in {:.2} s wall = {:.0} ops/s",
        report.total_operations, report.total_wall_secs, report.total_ops_per_sec_wall
    );

    harmony_bench::report::write_json(std::path::Path::new(&out), &report).expect("write json");
    println!("JSON written to {out}");

    // Every regeneration of the committed baseline also appends one line to
    // the wall-clock history, so cross-PR throughput comparisons survive the
    // overwrite of BENCH_e2e.json.
    let history =
        flag_value(&args, "--history").unwrap_or_else(|| "BENCH_history.json".to_string());
    if history != "none" {
        match append_history(
            std::path::Path::new(&history),
            &report,
            "bench_baseline regeneration",
        ) {
            Ok(entries) => println!("history appended to {history} ({entries} entries)"),
            Err(err) => eprintln!("warning: history not updated: {err}"),
        }
    }

    if let Some(baseline_path) = check {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let baseline: BenchBaseline =
            serde_json::from_str(&text).expect("parse committed baseline");
        let floor = baseline.total_ops_per_sec_wall * (1.0 - tolerance);
        println!(
            "Regression check against {baseline_path}: measured {:.0} ops/s vs \
             committed {:.0} ops/s (floor {:.0}, tolerance {:.0}%)",
            report.total_ops_per_sec_wall,
            baseline.total_ops_per_sec_wall,
            floor,
            tolerance * 100.0
        );
        if report.total_ops_per_sec_wall < floor {
            eprintln!("FAIL: wall-clock throughput regressed beyond the tolerance");
            std::process::exit(1);
        }
        println!("OK: within tolerance");
    }
}

//! The paper's headline claims (§I and §V):
//!
//! 1. Compared with static eventual consistency, Harmony with 20% tolerated
//!    stale reads reduces the stale data being read by almost 80% while
//!    adding only minimal latency.
//! 2. Compared with the strong consistency model, Harmony improves the
//!    throughput of the system by 45% while maintaining the desired
//!    consistency requirements of the application.
//!
//! This binary reruns the relevant comparison points and prints the measured
//! factors side by side with the paper's numbers.
//!
//! Usage: `cargo run --release -p harmony-bench --bin headline [-- --quick] [--json out.json]`

use harmony_bench::experiments::{config_by_name, run_policy_sweep, PolicySpec};
use harmony_bench::report::{has_flag, json_arg, Table};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct HeadlineResult {
    profile: String,
    stale_reduction_pct: f64,
    added_latency_pct: f64,
    throughput_gain_over_strong_pct: f64,
    harmony_setting: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_flag(&args, "--quick");

    println!("Harmony headline claims — measured vs paper\n");
    let mut results = Vec::new();
    let mut table = Table::new(vec!["profile", "metric", "paper", "measured"]);

    for profile_name in ["grid5000", "ec2"] {
        let mut config = config_by_name(profile_name).unwrap();
        if quick {
            config.records = 4_000;
            config.operations_per_thread = 250;
            config.min_operations = 8_000;
        }
        // The strict Harmony setting for the platform (20% on Grid'5000,
        // 40% on EC2) against the two static baselines, at a busy thread count.
        let strict = config.profile.harmony_settings[0];
        let policies = [
            PolicySpec::Harmony(strict),
            PolicySpec::Eventual,
            PolicySpec::Strong,
        ];
        let threads = if quick { vec![40] } else { vec![70, 90, 110] };
        let rows = run_policy_sweep(&config, &policies, &threads, false);

        let sum = |label: &str, f: &dyn Fn(&harmony_bench::SweepRow) -> f64| -> f64 {
            rows.iter()
                .filter(|r| r.policy == label)
                .map(f)
                .sum::<f64>()
                / threads.len() as f64
        };
        let harmony_label = PolicySpec::Harmony(strict).label();
        let stale_harmony = sum(&harmony_label, &|r| r.stale_reads as f64);
        let stale_eventual = sum("eventual", &|r| r.stale_reads as f64);
        let lat_harmony = sum(&harmony_label, &|r| r.read_mean_ms);
        let lat_eventual = sum("eventual", &|r| r.read_mean_ms);
        let tp_harmony = sum(&harmony_label, &|r| r.throughput);
        let tp_strong = sum("strong", &|r| r.throughput);

        let stale_reduction = if stale_eventual > 0.0 {
            (1.0 - stale_harmony / stale_eventual) * 100.0
        } else {
            0.0
        };
        let added_latency = if lat_eventual > 0.0 {
            (lat_harmony / lat_eventual - 1.0) * 100.0
        } else {
            0.0
        };
        let throughput_gain = if tp_strong > 0.0 {
            (tp_harmony / tp_strong - 1.0) * 100.0
        } else {
            0.0
        };

        table.add_row(vec![
            profile_name.to_string(),
            format!("stale-read reduction vs eventual ({harmony_label})"),
            "~80%".to_string(),
            format!("{stale_reduction:.0}%"),
        ]);
        table.add_row(vec![
            profile_name.to_string(),
            "added mean read latency vs eventual".to_string(),
            "minimal".to_string(),
            format!("+{added_latency:.0}%"),
        ]);
        table.add_row(vec![
            profile_name.to_string(),
            "throughput gain vs strong consistency".to_string(),
            "~45%".to_string(),
            format!("+{throughput_gain:.0}%"),
        ]);
        results.push(HeadlineResult {
            profile: profile_name.to_string(),
            stale_reduction_pct: stale_reduction,
            added_latency_pct: added_latency,
            throughput_gain_over_strong_pct: throughput_gain,
            harmony_setting: strict,
        });
    }

    println!("{table}");
    println!(
        "The paper's numbers come from a physical Cassandra deployment; ours from the calibrated\n\
         simulator, so match the direction and rough magnitude rather than the exact percentages."
    );

    if let Some(path) = json_arg(&args) {
        harmony_bench::report::write_json(&path, &results).expect("write json");
        println!("JSON written to {}", path.display());
    }
}

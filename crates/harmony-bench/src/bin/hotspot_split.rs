//! Skewed-workload sweep: the per-key *split* controller against the global
//! controller and the static baselines, across the canonical YCSB key
//! distributions (uniform → zipfian 0.99 → hotspot 0.1/0.9).
//!
//! The global controller estimates one cluster-wide stale-read probability,
//! so under skew it either escalates *every* read to protect a handful of
//! hot keys, or lets the hot keys read stale to keep the cold tail cheap.
//! The split controller tracks the heavy hitters (space-saving sketch in the
//! monitor), specialises the M/G/1 staleness estimate per hot key, and makes
//! a split decision: a strong-read hot set plus a cheap default level. The
//! sweep shows it on the throughput-vs-staleness frontier: higher throughput
//! than the global controller at equal-or-lower *hot-key* stale rate, and
//! degenerating to the global decision under uniform load.
//!
//! Usage:
//!   cargo run --release -p harmony-bench --bin hotspot_split -- --profile grid5000
//!   cargo run --release -p harmony-bench --bin hotspot_split -- --profile ec2
//! Flags: `--quick`, `--json <path>`, `--tolerance <frac>`, `--threads <n>`.

use harmony_bench::experiments::{config_by_name, run_workload_point, PolicySpec, SkewRow};
use harmony_bench::report::{has_flag, json_arg, profile_arg, Table};
use harmony_ycsb::workloads::{RequestDistribution, WorkloadSpec};

/// The skews of the sweep with the hot-key prefix reported for each: the
/// Zipfian head (ranks map to indices for the unscrambled chooser), the
/// hotspot's designated hot set, nothing for uniform.
fn skews(records: u64) -> Vec<(RequestDistribution, u64)> {
    vec![
        (RequestDistribution::Uniform, 0),
        (RequestDistribution::Zipfian, 16),
        (
            RequestDistribution::Hotspot,
            ((records as f64) * 0.1).ceil() as u64,
        ),
    ]
}

fn skewed_workload(records: u64, distribution: RequestDistribution) -> WorkloadSpec {
    let mut w = WorkloadSpec::workload_a(records).with_distribution(distribution);
    w.field_size = 64;
    if distribution == RequestDistribution::Hotspot {
        // The paper-claims hotspot setting: 10% of the keyspace takes 90% of
        // the operations.
        w.hotspot_hot_fraction = 0.1;
        w.hotspot_op_fraction = 0.9;
    }
    w
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile_name = profile_arg(&args, "grid5000");
    let quick = has_flag(&args, "--quick");
    let mut config = config_by_name(&profile_name)
        .unwrap_or_else(|| panic!("unknown profile {profile_name} (use grid5000 or ec2)"));
    // The split matters most around and past the write-stage saturation knee,
    // where hot keys build real per-key backlogs.
    let threads = args
        .windows(2)
        .find(|w| w[0] == "--threads")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(if quick { 20 } else { 40 });
    if quick {
        config.records = 4_000;
        config.operations_per_thread = 250;
        config.min_operations = 6_000;
    }
    // A strict tolerance is where the split earns its keep: the paper's
    // per-platform settings (20-60%) are far above the hot-key stale rates of
    // these scaled runs, so the default is the strictest paper-adjacent
    // setting under which the *global* controller visibly escalates.
    let asr = args
        .windows(2)
        .find(|w| w[0] == "--tolerance")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(0.03);
    let harmony = PolicySpec::Harmony(asr);
    let baselines = [PolicySpec::Eventual, PolicySpec::Strong];

    println!(
        "Per-key hot-spot staleness — split controller vs global across key skew \
         ({} profile, RF = {}, {} threads, harmony tolerance {:.0}%)",
        config.profile.name,
        config.store.replication_factor,
        threads,
        asr * 100.0
    );

    let mut all_rows: Vec<SkewRow> = Vec::new();
    for (distribution, hot_prefix) in skews(config.records) {
        let workload = skewed_workload(config.records, distribution);
        println!("\n== {} ==", workload.name);
        let mut table = Table::new(vec![
            "policy",
            "ops/s",
            "stale %",
            "hot stale %",
            "hot reads",
            "hot set",
        ]);
        let mut rows_here: Vec<SkewRow> = Vec::new();
        for (policy, split) in [(harmony, true), (harmony, false)]
            .into_iter()
            .chain(baselines.iter().map(|p| (*p, false)))
        {
            let result = run_workload_point(
                &config,
                workload.clone(),
                &policy,
                threads,
                hot_prefix,
                split,
            );
            let row = SkewRow::from_result(&policy, split, threads, &result);
            table.add_row(vec![
                row.policy.clone(),
                format!("{:.0}", row.throughput),
                format!("{:.1}%", row.stale_fraction * 100.0),
                format!("{:.1}%", row.hot_stale_fraction * 100.0),
                row.hot_reads.to_string(),
                row.hot_set_size.to_string(),
            ]);
            rows_here.push(row);
        }
        println!("{table}");
        let split_row = &rows_here[0];
        let global_row = &rows_here[1];
        println!(
            "split vs global: throughput {:+.0}%, hot-key stale {:.1}% vs {:.1}% \
             (tolerance {:.0}%), hot set {} keys",
            (split_row.throughput / global_row.throughput.max(1e-9) - 1.0) * 100.0,
            split_row.hot_stale_fraction * 100.0,
            global_row.hot_stale_fraction * 100.0,
            asr * 100.0,
            split_row.hot_set_size
        );
        all_rows.extend(rows_here);
    }

    println!(
        "\nPaper shape check: under skew the split controller beats the global one on\n\
         throughput while holding the hot-key stale rate within the tolerance; under\n\
         uniform load the hot set is empty and both controllers decide identically."
    );

    if let Some(path) = json_arg(&args) {
        harmony_bench::report::write_json(&path, &all_rows).expect("write json");
        println!("JSON written to {}", path.display());
    }
}

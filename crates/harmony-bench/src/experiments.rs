//! Shared experiment configuration for the per-figure binaries.
//!
//! The paper's runs use 3-10 million operations over 84 physical nodes
//! (Grid'5000) or 20 VMs (EC2). The harness scales the populations and
//! operation counts down so a full figure regenerates in minutes on a laptop,
//! while keeping the quantities that shape the curves: the read/update mix,
//! the replication factor (5), the thread-count sweep, the relative latency
//! of the two platforms, and the tolerated-stale-read settings per platform.

use harmony_adaptive::config::{ControllerConfig, PerKeySplitConfig};
use harmony_adaptive::policy::{ConsistencyPolicy, HarmonyPolicy, StaticPolicy};
use harmony_chaos::FaultSchedule;
use harmony_model::queueing::ProactiveConfig;
use harmony_sim::profiles::{self, ClusterProfile};
use harmony_store::config::StoreConfig;
use harmony_ycsb::runner::{
    run_experiment, run_experiment_with_faults, run_experiment_with_obs, run_experiment_with_retry,
    ExperimentResult, ExperimentSpec, Phase, RetryPolicy,
};
use harmony_ycsb::workloads::WorkloadSpec;
use harmony_ycsb::{ObsConfig, ObsReport};
use serde::{Deserialize, Serialize};

/// The client thread counts swept in Figures 5 and 6.
pub fn fig5_thread_counts() -> Vec<usize> {
    vec![1, 15, 40, 70, 90, 110, 130]
}

/// The thread phases of Figure 4(a): 90, 70, 40, 15 and finally 1 thread.
pub fn fig4a_thread_phases() -> Vec<usize> {
    vec![90, 70, 40, 15, 1]
}

/// A policy selection for an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// Static eventual consistency (read ONE).
    Eventual,
    /// Static strong consistency (read ALL).
    Strong,
    /// Static quorum reads.
    Quorum,
    /// Harmony with the given tolerated stale-read rate (fraction).
    Harmony(f64),
}

impl PolicySpec {
    /// A short label matching the paper's legend.
    pub fn label(&self) -> String {
        match self {
            PolicySpec::Eventual => "eventual".to_string(),
            PolicySpec::Strong => "strong".to_string(),
            PolicySpec::Quorum => "quorum".to_string(),
            PolicySpec::Harmony(asr) => format!("harmony-{:.0}%", asr * 100.0),
        }
    }

    /// Instantiates the policy for a store with the given replication factor.
    pub fn build(&self, replication_factor: usize) -> Box<dyn ConsistencyPolicy> {
        match self {
            PolicySpec::Eventual => Box::new(StaticPolicy::Eventual),
            PolicySpec::Strong => Box::new(StaticPolicy::Strong),
            PolicySpec::Quorum => Box::new(StaticPolicy::Quorum),
            PolicySpec::Harmony(asr) => Box::new(HarmonyPolicy::new(replication_factor, *asr)),
        }
    }

    /// The four policies compared on a platform: the platform's two Harmony
    /// settings, eventual, and strong (the legend of Figures 5 and 6).
    pub fn paper_set(profile: &ClusterProfile) -> Vec<PolicySpec> {
        vec![
            PolicySpec::Harmony(profile.harmony_settings[1]),
            PolicySpec::Harmony(profile.harmony_settings[0]),
            PolicySpec::Eventual,
            PolicySpec::Strong,
        ]
    }
}

/// Scaled experiment parameters for one platform.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// The platform profile (topology + network + RF + Harmony settings).
    pub profile: ClusterProfile,
    /// Store configuration used on this platform.
    pub store: StoreConfig,
    /// Controller configuration (monitoring period etc.).
    pub controller: ControllerConfig,
    /// Number of records loaded before the transaction phase.
    pub records: u64,
    /// Operations executed per client thread in a sweep point.
    pub operations_per_thread: u64,
    /// Minimum operations per sweep point regardless of thread count.
    pub min_operations: u64,
    /// Experiment seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// Operations for a run with `threads` client threads.
    pub fn operations_for(&self, threads: usize) -> u64 {
        (self.operations_per_thread * threads as u64).max(self.min_operations)
    }
}

/// The controller configuration shared by the figure harness *and* the
/// paper-claim integration tests (which exist to guard exactly what the
/// figure binaries run): a monitoring sweep every 50 ms (so even the
/// shortest runs span several adaptation periods), rates smoothed over a
/// 250 ms window, and a differential propagation window — writes are
/// acknowledged once the first replica has applied them, so the staleness
/// window fed to the model is the *spread* of replica propagation times
/// rather than the full one-way latency. The same calibration applies to the
/// queueing model: only the differential fraction of the cross-replica
/// queue-wait dispersion widens the window.
pub fn figure_controller_config() -> ControllerConfig {
    use harmony_model::queueing::QueueingModel;
    use harmony_model::staleness::PropagationModel;
    use harmony_monitor::collector::{EstimatorKind, MonitorConfig};
    ControllerConfig {
        monitor: MonitorConfig {
            // The paper's monitor runs continuously over minutes-long runs;
            // our scaled runs last a few virtual seconds, so the monitoring
            // period is scaled down proportionally.
            interval_secs: 0.05,
            estimator: EstimatorKind::SlidingWindow(0.25),
            ..MonitorConfig::default()
        },
        propagation: PropagationModel::differential(0.02, 0.005),
        // The queueing analogue of the differential latency window: only a
        // small calibrated fraction of the measured cross-replica backlog
        // dispersion enters the staleness window (the conditional closed
        // form overweights long windows at high access rates), and the
        // divergence detector requires the backlog to outgrow 4x its own
        // magnitude per second so stable saturation is not misread as a
        // runaway queue.
        queueing: QueueingModel {
            divergence_growth: 4.0,
            ..QueueingModel::differential(1e-4)
        },
        per_key: PerKeySplitConfig::default(),
        proactive: ProactiveConfig::default(),
        avg_write_size_bytes: 100.0,
        // Repair-blind staleness model by default: sweeps arm this only in
        // the self-healing comparisons.
        anti_entropy_repair_rate: 0.0,
    }
}

/// [`figure_controller_config`] with proactive (predicted-wait) control
/// switched on: the configuration the `proactive_sweep` comparison and the
/// proactive paper-claim tests run against the reactive baseline. Everything
/// else is identical, so any divergence between the two controllers is the
/// prediction term and nothing else.
pub fn proactive_figure_controller_config() -> ControllerConfig {
    enable_proactive(figure_controller_config())
}

/// Turns any controller configuration into its proactive counterpart:
/// predicted-wait blending and predicted-divergence escalation on, every
/// other knob untouched. The sweep binary and the step-response tests share
/// this transformation so the published comparison and the locked-in claims
/// move together.
pub fn enable_proactive(mut config: ControllerConfig) -> ControllerConfig {
    config.proactive = ProactiveConfig::enabled();
    config
}

/// [`figure_controller_config`] with per-key split decisions enabled: the
/// configuration of the *split* controller the `hotspot_split` sweep and the
/// skewed-workload paper-claim tests compare against the global one. The
/// per-key backlog feeds the key's staleness window at full weight — unlike
/// the cross-replica dispersion (which the conditional closed form
/// overweights, hence the tiny `spread_fraction` above), a key's own pending
/// mutations translate one-for-one into staleness for reads of that key.
/// The sketch is sized so the *whole* Zipfian head gets individual decisions
/// with margin: 256 counters put the tracking noise floor at ~0.4% write
/// share, so the head keys sit far above it and never flap out of the hot
/// set, while the 0.3% hot threshold hands every reliably-tracked key its
/// own level (keys that need only ONE simply get ONE — per-key decisions
/// cannot over-protect).
pub fn split_figure_controller_config() -> ControllerConfig {
    enable_split(figure_controller_config())
}

/// Turns any controller configuration into its split counterpart: per-key
/// decisions on, sketch sized as documented on
/// [`split_figure_controller_config`]. The `hotspot_split` sweep and the
/// paper-claim tests share this transformation, so tuning it here moves the
/// published sweep table and the locked-in claims together.
pub fn enable_split(mut config: ControllerConfig) -> ControllerConfig {
    config.per_key.enabled = true;
    config.monitor.hot_key_capacity = 256;
    config.monitor.hot_key_min_share = 0.003;
    config
}

/// The scaled-down Grid'5000 configuration.
///
/// The paper's Grid'5000 deployment has 84 bare-metal nodes with ~6 cores
/// each (496 cores total); the scaled profile keeps the per-node concurrency
/// (6) and Gigabit-class latencies while shrinking the node count to 20.
pub fn grid5000_experiment_config() -> ExperimentConfig {
    let profile = profiles::grid5000();
    let store = StoreConfig {
        replication_factor: profile.replication_factor,
        node_concurrency: 6,
        read_service_ms: 0.25,
        write_service_ms: 0.40,
        client_latency_ms: 0.15,
        ..StoreConfig::default()
    };
    ExperimentConfig {
        profile,
        store,
        controller: figure_controller_config(),
        records: 20_000,
        operations_per_thread: 1_500,
        min_operations: 30_000,
        seed: 2012,
    }
}

/// The scaled-down EC2 configuration (higher, jittery latency).
pub fn ec2_experiment_config() -> ExperimentConfig {
    let profile = profiles::ec2();
    let store = StoreConfig {
        replication_factor: profile.replication_factor,
        // EC2 Large instances in 2012: two cores per VM and slower,
        // virtualised I/O compared with the Grid'5000 bare-metal nodes.
        node_concurrency: 2,
        read_service_ms: 0.4,
        write_service_ms: 0.8,
        client_latency_ms: 0.4,
        ..StoreConfig::default()
    };
    ExperimentConfig {
        profile,
        store,
        controller: figure_controller_config(),
        records: 20_000,
        operations_per_thread: 1_500,
        min_operations: 30_000,
        seed: 2012,
    }
}

/// Picks the experiment configuration by profile name (`grid5000` or `ec2`).
pub fn config_by_name(name: &str) -> Option<ExperimentConfig> {
    match name {
        "grid5000" => Some(grid5000_experiment_config()),
        "ec2" => Some(ec2_experiment_config()),
        _ => None,
    }
}

/// Workload A scaled to the harness record count, with smaller rows so the
/// load phase stays laptop-friendly (the row *shape* — 10 fields — is kept).
pub fn scaled_workload_a(records: u64) -> WorkloadSpec {
    let mut w = WorkloadSpec::workload_a(records);
    w.field_size = 64;
    w
}

/// Workload B scaled the same way.
pub fn scaled_workload_b(records: u64) -> WorkloadSpec {
    let mut w = WorkloadSpec::workload_b(records);
    w.field_size = 64;
    w
}

/// One row of a thread-count sweep for one policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepRow {
    /// Policy label.
    pub policy: String,
    /// Client threads.
    pub threads: usize,
    /// Overall throughput (ops/s).
    pub throughput: f64,
    /// 99th-percentile read latency (ms).
    pub read_p99_ms: f64,
    /// Mean read latency (ms).
    pub read_mean_ms: f64,
    /// Stale reads (ground truth).
    pub stale_reads: u64,
    /// Stale reads as a fraction of reads.
    pub stale_fraction: f64,
    /// Total reads completed.
    pub reads: u64,
    /// Total operations completed.
    pub operations: u64,
}

impl SweepRow {
    /// Builds a row from an experiment result.
    pub fn from_result(policy: &PolicySpec, threads: usize, result: &ExperimentResult) -> Self {
        SweepRow {
            policy: policy.label(),
            threads,
            throughput: result.throughput(),
            read_p99_ms: result.read_p99_ms(),
            read_mean_ms: result.stats.read_latency.mean_ms(),
            stale_reads: result.stats.stale_reads,
            stale_fraction: result.stats.stale_fraction(),
            reads: result.stats.reads,
            operations: result.stats.operations,
        }
    }
}

/// One row of the skew sweep (`hotspot_split` binary): a (skew, policy,
/// controller-kind) point with the aggregate and hot-key staleness split out.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SkewRow {
    /// Workload name including the skew suffix (e.g. `workload-a-zipfian`).
    pub workload: String,
    /// Policy label; split controllers get a `+split` suffix.
    pub policy: String,
    /// Whether the per-key split controller was active.
    pub split: bool,
    /// Client threads.
    pub threads: usize,
    /// Overall throughput (ops/s).
    pub throughput: f64,
    /// 99th-percentile read latency (ms).
    pub read_p99_ms: f64,
    /// Stale fraction over all reads (ground truth).
    pub stale_fraction: f64,
    /// Stale fraction over reads of the designated hot keys.
    pub hot_stale_fraction: f64,
    /// Reads of the designated hot keys.
    pub hot_reads: u64,
    /// Hot keys escalated by the controller at the end of the run.
    pub hot_set_size: usize,
}

/// Runs one experiment for an explicit workload (skew sweeps), optionally
/// with the per-key split controller instead of the global one.
pub fn run_workload_point(
    config: &ExperimentConfig,
    workload: WorkloadSpec,
    policy: &PolicySpec,
    threads: usize,
    hot_key_prefix: u64,
    split: bool,
) -> ExperimentResult {
    run_workload_point_with_faults(
        config,
        workload,
        policy,
        threads,
        hot_key_prefix,
        split,
        FaultSchedule::empty(),
    )
}

/// [`run_workload_point`] with a fault schedule replayed during the run —
/// the entry point of the `fault_sweep` scenarios. An empty schedule is
/// byte-identical to the fault-free form.
pub fn run_workload_point_with_faults(
    config: &ExperimentConfig,
    workload: WorkloadSpec,
    policy: &PolicySpec,
    threads: usize,
    hot_key_prefix: u64,
    split: bool,
    faults: FaultSchedule,
) -> ExperimentResult {
    let spec = ExperimentSpec {
        workload,
        phases: vec![Phase::new(threads, config.operations_for(threads))],
        seed: config.seed,
        dual_read_measurement: false,
        hot_key_prefix,
        max_virtual_secs: 3_600.0,
    };
    let controller = if split {
        enable_split(config.controller)
    } else {
        config.controller
    };
    run_experiment_with_faults(
        &config.profile,
        config.store.clone(),
        controller,
        policy.build(config.store.replication_factor),
        spec,
        faults,
    )
}

/// [`run_workload_point_with_faults`] with the observability layer switched
/// on: sampled per-op traces, the flight recorder, the metrics registry and
/// the controller decision audit ride along and come back as an
/// [`ObsReport`]. `ObsConfig::off()` reproduces the fault-aware form byte
/// for byte.
#[allow(clippy::too_many_arguments)]
pub fn run_workload_point_with_obs(
    config: &ExperimentConfig,
    workload: WorkloadSpec,
    policy: &PolicySpec,
    threads: usize,
    hot_key_prefix: u64,
    split: bool,
    faults: FaultSchedule,
    obs: ObsConfig,
) -> (ExperimentResult, ObsReport) {
    let spec = ExperimentSpec {
        workload,
        phases: vec![Phase::new(threads, config.operations_for(threads))],
        seed: config.seed,
        dual_read_measurement: false,
        hot_key_prefix,
        max_virtual_secs: 3_600.0,
    };
    let controller = if split {
        enable_split(config.controller)
    } else {
        config.controller
    };
    run_experiment_with_obs(
        &config.profile,
        config.store.clone(),
        controller,
        policy.build(config.store.replication_factor),
        spec,
        faults,
        obs,
    )
}

/// [`run_workload_point_with_faults`] with a client-side retry/hedging
/// policy in the loop — the entry point of the `repair_sweep` arms. The
/// repair knobs themselves are carried by the config (the store's
/// anti-entropy interval, the controller's repair-aware staleness model); a
/// default retry policy plus an unarmed config is byte-identical to the
/// fault-aware form.
#[allow(clippy::too_many_arguments)]
pub fn run_workload_point_with_retry(
    config: &ExperimentConfig,
    workload: WorkloadSpec,
    policy: &PolicySpec,
    threads: usize,
    hot_key_prefix: u64,
    split: bool,
    faults: FaultSchedule,
    retry: RetryPolicy,
) -> ExperimentResult {
    let spec = ExperimentSpec {
        workload,
        phases: vec![Phase::new(threads, config.operations_for(threads))],
        seed: config.seed,
        dual_read_measurement: false,
        hot_key_prefix,
        max_virtual_secs: 3_600.0,
    };
    let controller = if split {
        enable_split(config.controller)
    } else {
        config.controller
    };
    run_experiment_with_retry(
        &config.profile,
        config.store.clone(),
        controller,
        policy.build(config.store.replication_factor),
        spec,
        faults,
        retry,
    )
}

impl SkewRow {
    /// Builds a row from an experiment result.
    pub fn from_result(
        policy: &PolicySpec,
        split: bool,
        threads: usize,
        result: &ExperimentResult,
    ) -> Self {
        SkewRow {
            workload: result.workload.clone(),
            policy: if split {
                format!("{}+split", policy.label())
            } else {
                policy.label()
            },
            split,
            threads,
            throughput: result.throughput(),
            read_p99_ms: result.read_p99_ms(),
            stale_fraction: result.stats.stale_fraction(),
            hot_stale_fraction: result.stats.hot_stale_fraction(),
            hot_reads: result.stats.hot_reads,
            hot_set_size: result.hot_set.len(),
        }
    }
}

/// Runs one experiment for a (policy, thread count) point.
pub fn run_point(
    config: &ExperimentConfig,
    policy: &PolicySpec,
    threads: usize,
    dual_read: bool,
) -> ExperimentResult {
    let workload = scaled_workload_a(config.records);
    let spec = ExperimentSpec {
        workload,
        phases: vec![Phase::new(threads, config.operations_for(threads))],
        seed: config.seed,
        dual_read_measurement: dual_read,
        hot_key_prefix: 0,
        max_virtual_secs: 3_600.0,
    };
    run_experiment(
        &config.profile,
        config.store.clone(),
        config.controller,
        policy.build(config.store.replication_factor),
        spec,
    )
}

/// [`run_point`] with the observability layer on — the arm the
/// obs-overhead gate times against the plain form.
pub fn run_point_with_obs(
    config: &ExperimentConfig,
    policy: &PolicySpec,
    threads: usize,
    dual_read: bool,
    obs: ObsConfig,
) -> (ExperimentResult, ObsReport) {
    let workload = scaled_workload_a(config.records);
    let spec = ExperimentSpec {
        workload,
        phases: vec![Phase::new(threads, config.operations_for(threads))],
        seed: config.seed,
        dual_read_measurement: dual_read,
        hot_key_prefix: 0,
        max_virtual_secs: 3_600.0,
    };
    run_experiment_with_obs(
        &config.profile,
        config.store.clone(),
        config.controller,
        policy.build(config.store.replication_factor),
        spec,
        FaultSchedule::empty(),
        obs,
    )
}

/// Runs the full thread-count sweep for every policy in `policies`.
pub fn run_policy_sweep(
    config: &ExperimentConfig,
    policies: &[PolicySpec],
    thread_counts: &[usize],
    dual_read: bool,
) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    for policy in policies {
        for &threads in thread_counts {
            let result = run_point(config, policy, threads, dual_read);
            rows.push(SweepRow::from_result(policy, threads, &result));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_specs_build_and_label() {
        assert_eq!(PolicySpec::Eventual.label(), "eventual");
        assert_eq!(PolicySpec::Harmony(0.2).label(), "harmony-20%");
        assert_eq!(
            PolicySpec::Quorum
                .build(5)
                .read_level(&harmony_adaptive::policy::PolicyContext::idle(5))
                .required_acks(5),
            3
        );
        let profile = profiles::grid5000();
        let set = PolicySpec::paper_set(&profile);
        assert_eq!(set.len(), 4);
        assert_eq!(set[0], PolicySpec::Harmony(0.40));
        assert_eq!(set[1], PolicySpec::Harmony(0.20));
    }

    #[test]
    fn configs_match_paper_settings() {
        let g = grid5000_experiment_config();
        assert_eq!(g.store.replication_factor, 5);
        assert_eq!(g.profile.harmony_settings, [0.20, 0.40]);
        let e = ec2_experiment_config();
        assert_eq!(e.store.replication_factor, 5);
        assert_eq!(e.profile.harmony_settings, [0.40, 0.60]);
        assert!(e.profile.mean_latency_ms() > g.profile.mean_latency_ms());
        assert!(config_by_name("grid5000").is_some());
        assert!(config_by_name("ec2").is_some());
        assert!(config_by_name("other").is_none());
    }

    #[test]
    fn operations_scale_with_threads() {
        let g = grid5000_experiment_config();
        assert_eq!(g.operations_for(1), g.min_operations);
        assert!(g.operations_for(130) >= 130 * g.operations_per_thread);
    }

    #[test]
    fn thread_sweeps_match_paper() {
        assert_eq!(fig5_thread_counts(), vec![1, 15, 40, 70, 90, 110, 130]);
        assert_eq!(fig4a_thread_phases(), vec![90, 70, 40, 15, 1]);
    }

    #[test]
    fn scaled_workloads_keep_the_paper_mix() {
        let a = scaled_workload_a(1000);
        assert_eq!(a.read_proportion, 0.5);
        assert_eq!(a.field_count, 10);
        let b = scaled_workload_b(1000);
        assert!((b.read_proportion - 0.95).abs() < 1e-12);
    }

    #[test]
    fn a_tiny_sweep_runs_end_to_end() {
        // Keep this cheap: 2 policies x 1 thread count, small population.
        let mut config = grid5000_experiment_config();
        config.records = 500;
        config.min_operations = 1_000;
        config.operations_per_thread = 100;
        let rows = run_policy_sweep(
            &config,
            &[PolicySpec::Eventual, PolicySpec::Harmony(0.2)],
            &[8],
            false,
        );
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.throughput > 0.0);
            assert!(row.operations >= 1_000);
            assert!(row.read_p99_ms > 0.0);
        }
    }
}

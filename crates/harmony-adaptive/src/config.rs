//! Configuration of the adaptive-consistency controller.

use harmony_model::queueing::QueueingModel;
use harmony_model::staleness::PropagationModel;
use harmony_monitor::collector::MonitorConfig;
use serde::{Deserialize, Serialize};

/// Configuration of an [`crate::controller::AdaptiveController`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Monitoring module configuration (sweep period, estimator, aggregation).
    pub monitor: MonitorConfig,
    /// How the network latency and write size are converted into the update
    /// propagation time `Tp`.
    pub propagation: PropagationModel,
    /// How the monitored write-stage queue signals (backlog dispersion,
    /// arrival/service rates, growth trend) become the queue-wait spread of
    /// the propagation-time distribution.
    pub queueing: QueueingModel,
    /// Average write payload size in bytes, fed to the propagation model
    /// (the paper's `avg_w`).
    pub avg_write_size_bytes: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            monitor: MonitorConfig::default(),
            propagation: PropagationModel::default(),
            queueing: QueueingModel::default(),
            avg_write_size_bytes: 1024.0,
        }
    }
}

impl ControllerConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.monitor.interval_secs <= 0.0 {
            return Err("monitor interval must be positive".into());
        }
        if self.avg_write_size_bytes < 0.0 {
            return Err("average write size must be non-negative".into());
        }
        self.queueing.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(ControllerConfig::default().validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = ControllerConfig::default();
        c.monitor.interval_secs = 0.0;
        assert!(c.validate().is_err());

        let c = ControllerConfig {
            avg_write_size_bytes: -1.0,
            ..ControllerConfig::default()
        };
        assert!(c.validate().is_err());

        let mut c = ControllerConfig::default();
        c.queueing.spread_shape = -1.0;
        assert!(c.validate().is_err());
    }
}

//! Configuration of the adaptive-consistency controller.

use harmony_model::perkey::PerKeyModel;
use harmony_model::queueing::{ProactiveConfig, QueueingModel};
use harmony_model::staleness::PropagationModel;
use harmony_monitor::collector::MonitorConfig;
use serde::{Deserialize, Serialize};

/// Configuration of the controller's per-key split decisions: a strong-read
/// hot set escalated against the policy's tolerance, plus the policy's own
/// decision as the cheap default for the cold tail.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PerKeySplitConfig {
    /// Whether split decisions are made at all. Disabled, the controller is
    /// exactly the cluster-wide (global) controller.
    pub enabled: bool,
    /// How a hot key's backlog and arrival intensity specialise the global
    /// staleness estimate.
    pub model: PerKeyModel,
    /// The propagation window used for *per-key* decisions. The global
    /// controller is typically calibrated with a differential window (only a
    /// fraction of the latency counts, because at aggregate rates the
    /// single-object closed form badly over-counts); evaluated at one key's
    /// own rates the model's assumptions actually hold, so the per-key window
    /// defaults to the paper's conservative full propagation time.
    pub propagation: harmony_model::staleness::PropagationModel,
}

/// Configuration of an [`crate::controller::AdaptiveController`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Monitoring module configuration (sweep period, estimator, aggregation).
    pub monitor: MonitorConfig,
    /// How the network latency and write size are converted into the update
    /// propagation time `Tp`.
    pub propagation: PropagationModel,
    /// How the monitored write-stage queue signals (backlog dispersion,
    /// arrival/service rates, growth trend) become the queue-wait spread of
    /// the propagation-time distribution.
    pub queueing: QueueingModel,
    /// Per-key split decisions for skewed workloads (hot set + cheap default).
    pub per_key: PerKeySplitConfig,
    /// Proactive (predicted-wait) control: blend the M/G/1 predicted wait
    /// dispersion into the staleness window and escalate on predicted
    /// divergence. Disabled by default; disabled, the controller is
    /// byte-identical to the reactive one.
    pub proactive: ProactiveConfig,
    /// Average write payload size in bytes, fed to the propagation model
    /// (the paper's `avg_w`).
    pub avg_write_size_bytes: f64,
    /// Anti-entropy repair rate the store is running at, in rounds per
    /// second (`0.0` = no repair). When positive, the staleness estimate is
    /// tightened through the effective-window transform
    /// `Tp / (1 + ρ·Tp)` (see `StalenessEstimate::with_repair`) — a lagging
    /// replica is healed by the next repair round even if normal
    /// propagation has not reached it. At `0.0` the controller is
    /// byte-identical to one without the knob.
    pub anti_entropy_repair_rate: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            monitor: MonitorConfig::default(),
            propagation: PropagationModel::default(),
            queueing: QueueingModel::default(),
            per_key: PerKeySplitConfig::default(),
            proactive: ProactiveConfig::default(),
            avg_write_size_bytes: 1024.0,
            anti_entropy_repair_rate: 0.0,
        }
    }
}

impl ControllerConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.monitor.interval_secs <= 0.0 {
            return Err("monitor interval must be positive".into());
        }
        if self.avg_write_size_bytes < 0.0 {
            return Err("average write size must be non-negative".into());
        }
        if !self.anti_entropy_repair_rate.is_finite() || self.anti_entropy_repair_rate < 0.0 {
            return Err("anti-entropy repair rate must be finite and non-negative".into());
        }
        self.queueing.validate()?;
        self.per_key.model.validate()?;
        self.proactive.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(ControllerConfig::default().validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = ControllerConfig::default();
        c.monitor.interval_secs = 0.0;
        assert!(c.validate().is_err());

        let c = ControllerConfig {
            avg_write_size_bytes: -1.0,
            ..ControllerConfig::default()
        };
        assert!(c.validate().is_err());

        let mut c = ControllerConfig::default();
        c.queueing.spread_shape = -1.0;
        assert!(c.validate().is_err());

        let mut c = ControllerConfig::default();
        c.per_key.model.backlog_fraction = 2.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn per_key_split_is_off_by_default() {
        assert!(!ControllerConfig::default().per_key.enabled);
    }

    #[test]
    fn repair_rate_defaults_to_zero_and_is_validated() {
        assert_eq!(ControllerConfig::default().anti_entropy_repair_rate, 0.0);
        for bad in [-1.0, f64::NAN, f64::INFINITY] {
            let c = ControllerConfig {
                anti_entropy_repair_rate: bad,
                ..ControllerConfig::default()
            };
            assert!(c.validate().is_err(), "rate {bad} must be rejected");
        }
        let c = ControllerConfig {
            anti_entropy_repair_rate: 0.5,
            ..ControllerConfig::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn proactive_control_is_off_by_default_and_validated() {
        assert!(!ControllerConfig::default().proactive.enabled);
        let mut c = ControllerConfig::default();
        c.proactive.prediction_weight = 2.0;
        assert!(c.validate().is_err());
    }
}

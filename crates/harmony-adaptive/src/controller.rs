//! The adaptive-consistency control loop.
//!
//! On every monitoring tick the controller (a) runs a monitoring sweep,
//! (b) converts the aggregated latency and average write size into the
//! propagation time `Tp`, (c) asks its policy for the consistency level the
//! next batch of reads should use, and (d) records the decision so the
//! estimate timeline of Figure 4 can be reconstructed.

use crate::config::ControllerConfig;
use crate::policy::{ConsistencyPolicy, PolicyContext};
use harmony_model::perkey::KeyLoad;
use harmony_model::queueing::WriteStageObservation;
use harmony_model::staleness::StaleReadModel;
use harmony_monitor::collector::Monitor;
use harmony_monitor::probe::ClusterProbe;
use harmony_obs::audit::DecisionAudit;
use harmony_sim::clock::SimTime;
use harmony_store::consistency::ConsistencyLevel;
use harmony_store::keys::KeyId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One control decision, recorded per monitoring tick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecisionRecord {
    /// When the decision was taken.
    pub at: SimTime,
    /// Monitored read rate (ops/s).
    pub read_rate: f64,
    /// Monitored write rate (ops/s).
    pub write_rate: f64,
    /// Aggregated network latency (ms).
    pub latency_ms: f64,
    /// Monitored mean mutation-stage backlog (ms). Informational: only its
    /// cross-replica *spread* widens the propagation window.
    pub backlog_ms: f64,
    /// Cross-replica backlog dispersion (ms, standard deviation).
    pub backlog_spread_ms: f64,
    /// Write-stage utilisation `ρ` from the M/G/1 model.
    pub utilization: f64,
    /// Whether the write-stage queue was judged to be diverging.
    pub diverging: bool,
    /// Mean propagation time fed to the model (seconds): network transfer
    /// plus the queue-wait spread mean.
    pub tp_secs: f64,
    /// M/G/1 predicted mean queue wait for the sweep (ms, saturated to the
    /// trend window — always finite). Informational when proactive control is
    /// disabled; the escalation input when enabled.
    pub predicted_wait_ms: f64,
    /// The policy's stale-read estimate, if it computes one.
    pub estimate: Option<f64>,
    /// Number of replicas the chosen (default) level will involve in reads.
    pub replicas_in_read: usize,
    /// Number of hot keys given individual per-key decisions this tick (zero
    /// when per-key splitting is disabled or the workload is unskewed).
    pub hot_keys: usize,
}

/// One hot key's individual decision, as recorded by the split controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HotKeyDecision {
    /// The hot key's human-readable name (reports and tests compare these).
    pub key: String,
    /// The hot key's interned id (what the read path matches on).
    pub key_id: KeyId,
    /// Replicas reads of this key must touch.
    pub replicas: usize,
    /// The key's monitored write arrival rate (writes/s).
    pub write_rate: f64,
    /// The key's monitored pending-mutation backlog (ms, laggard replica).
    pub backlog_ms: f64,
}

/// The periodic controller binding monitor, model and policy together.
pub struct AdaptiveController {
    config: ControllerConfig,
    monitor: Monitor,
    policy: Box<dyn ConsistencyPolicy>,
    model: StaleReadModel,
    replication_factor: usize,
    current_read_level: ConsistencyLevel,
    current_write_level: ConsistencyLevel,
    /// Hot keys currently escalated above the default level (split mode).
    /// Keyed by interned id: the per-read lookup hashes 4 bytes, not a
    /// string.
    hot_set: HashMap<KeyId, ConsistencyLevel>,
    /// The same escalations in stable (key-sorted) order, for reporting.
    hot_decisions: Vec<HotKeyDecision>,
    decisions: Vec<DecisionRecord>,
    /// Opt-in decision audit trail ([`DecisionAudit`] per tick): `None` (the
    /// default) records nothing, keeping the pinned decision timelines
    /// byte-identical. Kept separate from `decisions` on purpose — the
    /// determinism suite serialises `DecisionRecord` strictly.
    audit: Option<Vec<DecisionAudit>>,
}

impl AdaptiveController {
    /// Creates a controller for a store with the given replication factor.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(
        config: ControllerConfig,
        replication_factor: usize,
        policy: Box<dyn ConsistencyPolicy>,
    ) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid controller configuration: {e}"));
        AdaptiveController {
            monitor: Monitor::new(config.monitor),
            config,
            policy,
            model: StaleReadModel::new(replication_factor.max(1)),
            replication_factor: replication_factor.max(1),
            current_read_level: ConsistencyLevel::One,
            current_write_level: ConsistencyLevel::One,
            hot_set: HashMap::new(),
            hot_decisions: Vec::new(),
            decisions: Vec::new(),
            audit: None,
        }
    }

    /// Enables the decision audit trail: every subsequent tick records a
    /// [`DecisionAudit`] with the estimate inputs that produced the decision.
    pub fn enable_decision_audit(&mut self) {
        if self.audit.is_none() {
            self.audit = Some(Vec::new());
        }
    }

    /// The audit trail recorded so far (empty unless
    /// [`AdaptiveController::enable_decision_audit`] was called).
    pub fn audit_log(&self) -> &[DecisionAudit] {
        self.audit.as_deref().unwrap_or(&[])
    }

    /// Exports the controller's decision outcomes into a metrics registry:
    /// one counter per chosen replica count, escalation/relaxation tallies,
    /// and the current default level as a gauge. Collect-on-scrape.
    pub fn export_metrics(&self, registry: &harmony_obs::MetricsRegistry) {
        registry
            .counter("harmony_decisions_total")
            .add(self.decisions.len() as u64);
        let mut escalations = 0u64;
        let mut relaxations = 0u64;
        for pair in self.decisions.windows(2) {
            if pair[1].replicas_in_read > pair[0].replicas_in_read {
                escalations += 1;
            } else if pair[1].replicas_in_read < pair[0].replicas_in_read {
                relaxations += 1;
            }
        }
        registry
            .counter("harmony_decision_escalations_total")
            .add(escalations);
        registry
            .counter("harmony_decision_relaxations_total")
            .add(relaxations);
        for d in &self.decisions {
            registry
                .counter(&harmony_obs::series_name(
                    "harmony_decision_level_total",
                    &[("replicas", &d.replicas_in_read.to_string())],
                ))
                .inc();
        }
        if let Some(last) = self.decisions.last() {
            registry
                .gauge("harmony_current_read_replicas")
                .set(last.replicas_in_read as f64);
            registry
                .gauge("harmony_hot_keys_escalated")
                .set(last.hot_keys as f64);
        }
        self.monitor.export_metrics(registry);
    }

    /// The monitoring interval (how often [`AdaptiveController::tick`] should
    /// be called).
    pub fn interval(&self) -> SimTime {
        self.monitor.interval()
    }

    /// The policy's report name (e.g. `"harmony-20"`, `"eventual"`).
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }

    /// The consistency level reads should currently use — the *default*
    /// level; reads of escalated hot keys must consult
    /// [`AdaptiveController::read_level_for`] instead.
    pub fn current_read_level(&self) -> ConsistencyLevel {
        self.current_read_level
    }

    /// The consistency level a read of `key` should use: the key's escalated
    /// level when it is in the hot set, the default level otherwise. With
    /// per-key splitting disabled (or no hot keys) this is exactly
    /// [`AdaptiveController::current_read_level`]. `Copy` id in, no
    /// allocation, no string hashing — this sits on the per-read hot path.
    pub fn read_level_for(&self, key: KeyId) -> ConsistencyLevel {
        self.hot_set
            .get(&key)
            .copied()
            .unwrap_or(self.current_read_level)
    }

    /// The hot keys currently escalated above the default level, in stable
    /// (key-sorted) order.
    pub fn hot_set(&self) -> &[HotKeyDecision] {
        &self.hot_decisions
    }

    /// The consistency level writes should currently use.
    pub fn current_write_level(&self) -> ConsistencyLevel {
        self.current_write_level
    }

    /// All decisions taken so far (one per tick).
    pub fn decisions(&self) -> &[DecisionRecord] {
        &self.decisions
    }

    /// Read-only access to the embedded monitor.
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// Runs one control iteration at virtual time `now` against the given
    /// cluster probe and returns the (possibly unchanged) read level.
    pub fn tick<P: ClusterProbe + ?Sized>(&mut self, now: SimTime, probe: &P) -> ConsistencyLevel {
        let sample = self.monitor.sweep(now, probe);
        // The network-transfer component of `Tp` from the propagation model;
        // the replica-side queueing behaviour enters as a *distribution* via
        // the queueing model rather than being folded into the scalar. Near
        // saturation this is the difference between a high-but-stable backlog
        // (narrow spread — cheap reads stay safe) and a diverging queue
        // (escalate), which is exactly the regime Figure 5(c)/(d) sweeps.
        let tp_network_secs = self
            .config
            .propagation
            .propagation_time_secs(sample.latency_ms, self.config.avg_write_size_bytes);
        let observation = WriteStageObservation {
            arrival_rate_per_replica: sample.write_arrival_rate_per_replica,
            service_mean_ms: sample.write_service_mean_ms,
            service_scv: sample.write_service_scv,
            backlog_mean_ms: sample.backlog_ms,
            backlog_variance_ms2: sample.backlog_spread_ms * sample.backlog_spread_ms,
            backlog_trend_ms_per_s: sample.backlog_trend_ms_per_s,
            predicted_wait_ms: sample.predicted_wait_ms,
            predicted_wait_trend_ms_per_s: sample.predicted_wait_trend_ms_per_s,
        };
        let staleness = self
            .config
            .queueing
            .estimate_with_prediction(
                &observation,
                tp_network_secs,
                self.replication_factor,
                &self.config.proactive,
            )
            // Active anti-entropy repair tightens the window (identity at
            // rate 0, so the disabled controller stays byte-identical).
            .with_repair(self.config.anti_entropy_repair_rate);
        let tp_secs = staleness.tp_mean_secs();

        // Per-key split. The paper's closed form is a single-object race
        // model — `λr`/`λw` as if every read and write contended on the same
        // key — so evaluated at aggregate rates it effectively prices every
        // read as a read of the hottest key. With the heavy hitters tracked,
        // the controller can do better on both sides of the split:
        //
        // * the *default* level is decided at the cold tail's provable
        //   worst-case per-key intensity — the space-saving bound says no key
        //   outside the hot set can have a write share above
        //   `cold_share_bound()`, so scaling the rates by that bound covers
        //   every cold key without charging it for hot-key pressure;
        // * each *hot* key is decided individually from its own measured
        //   arrival rate and per-key backlog, against the same tolerance.
        //
        // With splitting disabled, no tolerance-bearing policy, or no hot
        // keys (unskewed load, warmup, incapable backend), the scaling is
        // skipped entirely and the decision is byte-identical to the global
        // controller's.
        let tolerance = self.policy.tolerated_stale_rate();
        let split_active = self.config.per_key.enabled
            && tolerance.is_some()
            && !self.monitor.hot_key_stats().is_empty();
        let (default_read_rate, default_write_rate) = if split_active {
            let bound = self.monitor.cold_share_bound().clamp(0.0, 1.0);
            (sample.read_rate * bound, sample.write_rate * bound)
        } else {
            (sample.read_rate, sample.write_rate)
        };

        let ctx = PolicyContext {
            read_rate: default_read_rate,
            write_rate: default_write_rate,
            tp_secs,
            staleness,
            replication_factor: self.replication_factor,
        };
        self.current_read_level = self.policy.read_level(&ctx);
        self.current_write_level = self.policy.write_level(&ctx);

        // Decide every hot key individually; reads of these keys bypass the
        // default level entirely.
        self.hot_set.clear();
        self.hot_decisions.clear();
        if split_active {
            let asr = tolerance.expect("split_active implies a tolerance");
            // Per-key decisions use the per-key propagation window (full by
            // default, where the global one is differential) on top of the
            // same queue-health signals.
            let per_key_staleness = harmony_model::queueing::StalenessEstimate {
                tp_network_secs: self
                    .config
                    .per_key
                    .propagation
                    .propagation_time_secs(sample.latency_ms, self.config.avg_write_size_bytes),
                ..staleness
            };
            for stat in self.monitor.hot_key_stats() {
                // Reads follow the same key popularity as writes (YCSB draws
                // both from one chooser), so the key's read rate is its
                // write-share slice of the aggregate read rate.
                let load = KeyLoad {
                    read_rate: stat.share.clamp(0.0, 1.0) * sample.read_rate,
                    write_rate: stat.write_rate.max(0.0),
                    backlog_ms: stat.backlog_ms.max(0.0),
                };
                let replicas = self.config.per_key.model.required_replicas(
                    &self.model,
                    asr,
                    &per_key_staleness,
                    &load,
                );
                let level = ConsistencyLevel::from_replica_count(replicas, self.replication_factor);
                self.hot_set.insert(stat.key, level);
                self.hot_decisions.push(HotKeyDecision {
                    key: stat.name.clone(),
                    key_id: stat.key,
                    replicas,
                    write_rate: stat.write_rate,
                    backlog_ms: stat.backlog_ms,
                });
            }
            self.hot_decisions.sort_by(|a, b| a.key.cmp(&b.key));
        }

        if self.audit.is_some() {
            let previous_replicas = self
                .decisions
                .last()
                .map(|d| d.replicas_in_read as u64)
                .unwrap_or(0);
            let record = DecisionAudit {
                at_secs: now.as_secs_f64(),
                read_rate: sample.read_rate,
                write_rate: sample.write_rate,
                latency_ms: sample.latency_ms,
                measured_backlog_ms: sample.backlog_ms,
                backlog_spread_ms: sample.backlog_spread_ms,
                predicted_wait_ms: sample.predicted_wait_ms,
                utilization: staleness.utilization,
                diverging: staleness.diverging,
                tp_secs,
                repair_rate: self.config.anti_entropy_repair_rate,
                fault_epoch: probe.fault_epoch(),
                live_nodes: probe.live_node_count() as u64,
                estimate: self.policy.last_estimate().unwrap_or(-1.0),
                tolerance: tolerance.unwrap_or(-1.0),
                replicas_in_read: self
                    .current_read_level
                    .required_acks(self.replication_factor)
                    as u64,
                previous_replicas,
                hot_keys: self.hot_set.len() as u64,
            };
            if let Some(audit) = self.audit.as_mut() {
                audit.push(record);
            }
        }
        self.decisions.push(DecisionRecord {
            at: now,
            read_rate: sample.read_rate,
            write_rate: sample.write_rate,
            latency_ms: sample.latency_ms,
            backlog_ms: sample.backlog_ms,
            backlog_spread_ms: sample.backlog_spread_ms,
            utilization: staleness.utilization,
            diverging: staleness.diverging,
            tp_secs,
            predicted_wait_ms: sample.predicted_wait_ms,
            estimate: self.policy.last_estimate(),
            replicas_in_read: self
                .current_read_level
                .required_acks(self.replication_factor),
            hot_keys: self.hot_set.len(),
        });
        self.current_read_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{HarmonyPolicy, StaticPolicy};
    use harmony_monitor::probe::MockProbe;

    fn controller(policy: Box<dyn ConsistencyPolicy>) -> AdaptiveController {
        AdaptiveController::new(ControllerConfig::default(), 5, policy)
    }

    #[test]
    fn static_policies_never_change_level() {
        let mut c = controller(Box::new(StaticPolicy::Strong));
        let mut probe = MockProbe {
            nodes: 10,
            latency_ms: 1.0,
            ..MockProbe::default()
        };
        for i in 1..=10u64 {
            probe.reads += 5_000;
            probe.writes += 5_000;
            let level = c.tick(SimTime::from_secs(i), &probe);
            assert_eq!(level, ConsistencyLevel::All);
        }
        assert_eq!(c.policy_name(), "strong");
        assert_eq!(c.decisions().len(), 10);
    }

    #[test]
    fn harmony_raises_level_when_update_load_appears() {
        let mut c = controller(Box::new(HarmonyPolicy::new(5, 0.2)));
        let mut probe = MockProbe {
            nodes: 10,
            latency_ms: 1.0,
            ..MockProbe::default()
        };
        // Idle system: level ONE.
        let level = c.tick(SimTime::from_secs(1), &probe);
        assert_eq!(level, ConsistencyLevel::One);
        // Sudden heavy read-update load.
        probe.reads += 5_000;
        probe.writes += 4_000;
        let level = c.tick(SimTime::from_secs(2), &probe);
        assert!(level.required_acks(5) > 1, "level={level}");
        let last = c.decisions().last().unwrap();
        assert!(last.estimate.unwrap() > 0.2);
        assert!(last.tp_secs > 0.0);
        assert_eq!(last.replicas_in_read, level.required_acks(5));
    }

    #[test]
    fn harmony_relaxes_back_when_load_subsides() {
        let mut c = AdaptiveController::new(
            ControllerConfig {
                monitor: harmony_monitor::collector::MonitorConfig {
                    estimator: harmony_monitor::collector::EstimatorKind::Ewma(1.0),
                    ..Default::default()
                },
                ..Default::default()
            },
            5,
            Box::new(HarmonyPolicy::new(5, 0.4)),
        );
        let mut probe = MockProbe {
            nodes: 10,
            latency_ms: 1.0,
            ..MockProbe::default()
        };
        probe.reads = 5_000;
        probe.writes = 4_000;
        let busy = c.tick(SimTime::from_secs(1), &probe);
        assert!(busy.required_acks(5) > 1);
        // Load disappears; with an alpha-1 EWMA the very next tick sees it.
        let calm = c.tick(SimTime::from_secs(10), &probe);
        assert_eq!(calm, ConsistencyLevel::One);
    }

    #[test]
    fn decision_history_is_chronological_and_complete() {
        let mut c = controller(Box::new(HarmonyPolicy::new(5, 0.4)));
        let probe = MockProbe {
            nodes: 3,
            latency_ms: 0.5,
            ..MockProbe::default()
        };
        for i in 1..=20u64 {
            c.tick(SimTime::from_secs(i), &probe);
        }
        let d = c.decisions();
        assert_eq!(d.len(), 20);
        assert!(d.windows(2).all(|w| w[0].at < w[1].at));
        assert!(d.iter().all(|r| r.estimate.is_some()));
    }

    #[test]
    fn uniform_backlog_keeps_cheap_reads_but_dispersion_escalates() {
        let build = || {
            AdaptiveController::new(
                ControllerConfig {
                    monitor: harmony_monitor::collector::MonitorConfig {
                        estimator: harmony_monitor::collector::EstimatorKind::Ewma(1.0),
                        ..Default::default()
                    },
                    ..Default::default()
                },
                5,
                Box::new(HarmonyPolicy::new(5, 0.4)),
            )
        };
        // Uniform 20 ms backlog on every node: the spread is zero, so even a
        // modest load keeps reads at ONE — the estimate is driven by the
        // network window alone.
        let mut uniform = build();
        let mut probe = MockProbe {
            nodes: 10,
            latency_ms: 0.2,
            replica_backlogs: vec![20.0; 10],
            ..MockProbe::default()
        };
        probe.reads = 300;
        probe.writes = 200;
        let level = uniform.tick(SimTime::from_secs(1), &probe);
        assert_eq!(level, ConsistencyLevel::One);
        let rec = uniform.decisions().last().copied().unwrap();
        assert!((rec.backlog_ms - 20.0).abs() < 1e-9);
        assert_eq!(rec.backlog_spread_ms, 0.0);
        assert!(!rec.diverging);

        // The same mean backlog with heavy cross-replica dispersion widens
        // the window and escalates the level.
        let mut dispersed = build();
        probe.replica_backlogs = vec![0.0, 0.0, 0.0, 0.0, 0.0, 40.0, 40.0, 40.0, 40.0, 40.0];
        let level = dispersed.tick(SimTime::from_secs(1), &probe);
        assert!(level.required_acks(5) > 1, "level={level}");
        let rec = dispersed.decisions().last().copied().unwrap();
        assert!(rec.backlog_spread_ms > 19.0);
        assert!(rec.tp_secs > 0.001);
    }

    fn split_config(tolerance_policy: Box<dyn ConsistencyPolicy>) -> AdaptiveController {
        AdaptiveController::new(
            ControllerConfig {
                monitor: harmony_monitor::collector::MonitorConfig {
                    estimator: harmony_monitor::collector::EstimatorKind::Ewma(1.0),
                    hot_key_capacity: 4,
                    ..Default::default()
                },
                per_key: crate::config::PerKeySplitConfig {
                    enabled: true,
                    ..Default::default()
                },
                ..Default::default()
            },
            5,
            tolerance_policy,
        )
    }

    /// A skewed batch: half the writes hit "hot", the rest a rotating tail.
    fn skewed_batch(tick: u64) -> Vec<String> {
        (0..80u64)
            .map(|i| {
                if i % 2 == 0 {
                    "hot".to_string()
                } else {
                    format!("cold{}", (tick * 40 + i) % 30)
                }
            })
            .collect()
    }

    /// Scripts the probe's pending write-key samples from readable names.
    fn set_batch(probe: &MockProbe, batch: Vec<String>) {
        probe.set_write_keys(&batch);
    }

    #[test]
    fn split_escalates_the_hot_key_and_keeps_the_tail_cheap() {
        let mut c = split_config(Box::new(HarmonyPolicy::new(5, 0.4)));
        let mut probe = MockProbe {
            nodes: 10,
            latency_ms: 1.0,
            ..MockProbe::default()
        };
        probe.key_backlogs.insert("hot".to_string(), 20.0);
        for tick in 1..=5u64 {
            probe.reads += 240;
            probe.writes += 80;
            set_batch(&probe, skewed_batch(tick));
            c.tick(SimTime::from_secs(tick), &probe);
        }
        // The default level stays cheap: the cold tail's residual load is
        // well within the tolerance.
        assert_eq!(c.current_read_level(), ConsistencyLevel::One);
        // The hot key is escalated above the default.
        let hot = c.hot_set();
        assert_eq!(hot.len(), 1, "hot set: {hot:?}");
        assert_eq!(hot[0].key, "hot");
        assert!(hot[0].replicas > 1, "replicas = {}", hot[0].replicas);
        assert!(hot[0].backlog_ms > 0.0);
        assert_eq!(hot[0].key_id, probe.intern("hot"));
        assert!(
            c.read_level_for(probe.intern("hot")).required_acks(5) > 1,
            "hot key must read above ONE"
        );
        assert_eq!(
            c.read_level_for(probe.intern("cold7")),
            ConsistencyLevel::One
        );
        let last = c.decisions().last().unwrap();
        assert_eq!(last.hot_keys, 1);
        assert_eq!(last.replicas_in_read, 1);
    }

    #[test]
    fn split_with_uniform_stream_is_byte_identical_to_global() {
        let run = |enabled: bool| {
            let mut c = AdaptiveController::new(
                ControllerConfig {
                    monitor: harmony_monitor::collector::MonitorConfig {
                        estimator: harmony_monitor::collector::EstimatorKind::Ewma(1.0),
                        hot_key_capacity: 4,
                        ..Default::default()
                    },
                    per_key: crate::config::PerKeySplitConfig {
                        enabled,
                        ..Default::default()
                    },
                    ..Default::default()
                },
                5,
                Box::new(HarmonyPolicy::new(5, 0.2)),
            );
            let mut probe = MockProbe {
                nodes: 10,
                latency_ms: 1.0,
                ..MockProbe::default()
            };
            for tick in 1..=6u64 {
                probe.reads += 4_000;
                probe.writes += 3_000;
                // Uniform stream: no key ever clears the hot thresholds.
                let batch: Vec<String> = (0..100u64)
                    .map(|i| format!("u{}", (tick * 100 + i) % 400))
                    .collect();
                set_batch(&probe, batch);
                c.tick(SimTime::from_secs(tick), &probe);
            }
            assert!(c.hot_set().is_empty());
            c.decisions().to_vec()
        };
        assert_eq!(
            run(true),
            run(false),
            "with no hot keys the split controller must decide exactly like the global one"
        );
    }

    #[test]
    fn static_policies_are_never_split() {
        let mut c = split_config(Box::new(StaticPolicy::Eventual));
        let mut probe = MockProbe {
            nodes: 10,
            latency_ms: 1.0,
            ..MockProbe::default()
        };
        probe.key_backlogs.insert("hot".to_string(), 50.0);
        for tick in 1..=5u64 {
            probe.reads += 240;
            probe.writes += 80;
            set_batch(&probe, skewed_batch(tick));
            c.tick(SimTime::from_secs(tick), &probe);
        }
        assert!(
            c.hot_set().is_empty(),
            "a policy without a tolerance has nothing to escalate against"
        );
        assert_eq!(c.read_level_for(probe.intern("hot")), ConsistencyLevel::One);
    }

    /// Drives a controller through an arrival ramp into write-stage
    /// saturation while the *measured* backlog dispersion stays flat, and
    /// returns the tick index of the first above-ONE decision (None if it
    /// never escalates).
    fn first_escalation_under_arrival_ramp(
        proactive: harmony_model::queueing::ProactiveConfig,
    ) -> Option<usize> {
        use harmony_store::node::WriteStageTelemetry;
        let mut c = AdaptiveController::new(
            ControllerConfig {
                monitor: harmony_monitor::collector::MonitorConfig {
                    estimator: harmony_monitor::collector::EstimatorKind::Ewma(1.0),
                    ..Default::default()
                },
                proactive,
                ..Default::default()
            },
            5,
            Box::new(HarmonyPolicy::new(5, 0.2)),
        );
        let mut probe = MockProbe {
            nodes: 1,
            latency_ms: 0.05,
            write_concurrency: 1,
            replica_backlogs: vec![1.0],
            ..MockProbe::default()
        };
        // Mutation arrivals ramp to ρ > 1 (1 ms deterministic service) while
        // the probed backlog and its dispersion stay put — the measured
        // signals lag the arrivals by design of the scenario.
        let mut cumulative = 0u64;
        let mut first = None;
        for (i, rate) in [100u64, 400, 800, 1100, 1300, 1300].iter().enumerate() {
            cumulative += rate;
            probe.write_telemetry = vec![WriteStageTelemetry {
                arrivals: cumulative,
                completed: cumulative,
                service_ms_total: cumulative as f64,
                service_ms_sq_total: cumulative as f64,
                queued: 0,
                busy: 0,
            }];
            probe.reads += 50;
            probe.writes += 50;
            let level = c.tick(SimTime::from_secs(i as u64 + 1), &probe);
            if first.is_none() && level.required_acks(5) > 1 {
                first = Some(i);
            }
        }
        for d in c.decisions() {
            assert!(d.predicted_wait_ms.is_finite());
            assert!(d.utilization.is_finite());
        }
        first
    }

    #[test]
    fn proactive_controller_escalates_before_the_reactive_one() {
        let reactive = first_escalation_under_arrival_ramp(
            harmony_model::queueing::ProactiveConfig::default(),
        );
        let proactive = first_escalation_under_arrival_ramp(
            harmony_model::queueing::ProactiveConfig::enabled(),
        );
        let p = proactive.expect("the proactive controller must escalate on the ramp");
        match reactive {
            // The reactive controller never sees a reason to escalate (the
            // measured dispersion never moves) — the proactive one does.
            None => {}
            Some(r) => assert!(p < r, "proactive tick {p} must precede reactive tick {r}"),
        }
    }

    #[test]
    fn disabled_proactive_controller_is_byte_identical() {
        let run = |proactive: harmony_model::queueing::ProactiveConfig| {
            let mut c = AdaptiveController::new(
                ControllerConfig {
                    proactive,
                    ..Default::default()
                },
                5,
                Box::new(HarmonyPolicy::new(5, 0.2)),
            );
            let mut probe = MockProbe {
                nodes: 10,
                latency_ms: 1.0,
                replica_backlogs: vec![1.0, 2.0, 5.0, 0.5, 3.0, 1.0, 2.0, 4.0, 0.0, 2.5],
                ..MockProbe::default()
            };
            for tick in 1..=8u64 {
                probe.reads += 4_000;
                probe.writes += 3_000;
                c.tick(SimTime::from_secs(tick), &probe);
            }
            c.decisions().to_vec()
        };
        let default_run = run(harmony_model::queueing::ProactiveConfig::default());
        // Tuned knobs must be inert while the master switch is off.
        let tuned_but_off = run(harmony_model::queueing::ProactiveConfig {
            enabled: false,
            prediction_weight: 1.0,
            min_utilization: 0.0,
            horizon_secs: 9.0,
        });
        assert_eq!(default_run, tuned_but_off);
    }

    /// The repair term at rate zero is the identity: the decision stream is
    /// byte-identical to a controller that has never heard of repair.
    #[test]
    fn zero_repair_rate_is_byte_identical() {
        let run = |rate: f64| {
            let mut c = AdaptiveController::new(
                ControllerConfig {
                    anti_entropy_repair_rate: rate,
                    ..Default::default()
                },
                5,
                Box::new(HarmonyPolicy::new(5, 0.2)),
            );
            let mut probe = MockProbe {
                nodes: 10,
                latency_ms: 1.0,
                replica_backlogs: vec![1.0, 2.0, 5.0, 0.5, 3.0, 1.0, 2.0, 4.0, 0.0, 2.5],
                ..MockProbe::default()
            };
            for tick in 1..=8u64 {
                probe.reads += 4_000;
                probe.writes += 3_000;
                c.tick(SimTime::from_secs(tick), &probe);
            }
            c.decisions().to_vec()
        };
        assert_eq!(run(0.0), run(0.0));
        // And the default config *is* the rate-zero config.
        assert_eq!(ControllerConfig::default().anti_entropy_repair_rate, 0.0);
    }

    /// A fast repair cadence tightens the staleness estimate enough to keep
    /// reads at ONE under a load that escalates the repair-free controller.
    #[test]
    fn repair_progress_relaxes_the_consistency_decision() {
        let run = |rate: f64| {
            let mut c = AdaptiveController::new(
                ControllerConfig {
                    monitor: harmony_monitor::collector::MonitorConfig {
                        estimator: harmony_monitor::collector::EstimatorKind::Ewma(1.0),
                        ..Default::default()
                    },
                    anti_entropy_repair_rate: rate,
                    ..Default::default()
                },
                5,
                Box::new(HarmonyPolicy::new(5, 0.2)),
            );
            let mut probe = MockProbe {
                nodes: 10,
                latency_ms: 1.0,
                ..MockProbe::default()
            };
            probe.reads = 5_000;
            probe.writes = 4_000;
            c.tick(SimTime::from_secs(1), &probe)
        };
        let without = run(0.0);
        assert!(
            without.required_acks(5) > 1,
            "the load must escalate without repair: {without}"
        );
        let with = run(10_000.0);
        assert!(
            with.required_acks(5) < without.required_acks(5),
            "fast repair must relax the decision: {with} vs {without}"
        );
    }

    #[test]
    fn write_level_defaults_to_one() {
        let mut c = controller(Box::new(HarmonyPolicy::new(5, 0.2)));
        let probe = MockProbe {
            nodes: 3,
            latency_ms: 0.5,
            ..MockProbe::default()
        };
        c.tick(SimTime::from_secs(1), &probe);
        assert_eq!(c.current_write_level(), ConsistencyLevel::One);
    }

    #[test]
    #[should_panic(expected = "invalid controller configuration")]
    fn invalid_config_panics() {
        let cfg = ControllerConfig {
            avg_write_size_bytes: -1.0,
            ..ControllerConfig::default()
        };
        AdaptiveController::new(cfg, 5, Box::new(StaticPolicy::Eventual));
    }
}

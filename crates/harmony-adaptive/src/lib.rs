//! # harmony-adaptive
//!
//! The adaptive-consistency module of Harmony (paper §III and §V.A): the
//! component that periodically takes the monitoring module's output (access
//! rates and network latency), runs the stale-read estimation model, applies
//! the decision scheme, and hands the resulting consistency level to the
//! client layer for all subsequent reads.
//!
//! Besides the Harmony policy itself, the crate provides the static baselines
//! the paper compares against (eventual consistency = always `ONE`, strong
//! consistency = always `ALL`, plus a static `QUORUM` baseline and arbitrary
//! fixed levels), all behind one [`policy::ConsistencyPolicy`] trait so the
//! workload runner can treat them interchangeably.

pub mod config;
pub mod controller;
pub mod policy;

pub use config::{ControllerConfig, PerKeySplitConfig};
pub use controller::{AdaptiveController, DecisionRecord, HotKeyDecision};
pub use policy::{ConsistencyPolicy, HarmonyPolicy, PolicyContext, StaticPolicy};

//! Consistency policies: the Harmony adaptive policy and the static baselines
//! the paper compares against.

use harmony_model::decision::{decide_with_estimate, ConsistencyDecision};
use harmony_model::queueing::StalenessEstimate;
use harmony_model::staleness::StaleReadModel;
use harmony_store::consistency::ConsistencyLevel;
use serde::{Deserialize, Serialize};

/// The run-time information a policy may consult when picking a read level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyContext {
    /// Monitored read rate (operations/second).
    pub read_rate: f64,
    /// Monitored write/update rate (operations/second).
    pub write_rate: f64,
    /// Mean of the estimated update propagation time `Tp` in seconds (kept in
    /// sync with `staleness.tp_mean_secs()`).
    pub tp_secs: f64,
    /// The full propagation-time distribution plus write-stage queue health;
    /// policies that model staleness should consume this rather than the
    /// scalar `tp_secs`.
    pub staleness: StalenessEstimate,
    /// Replication factor of the store.
    pub replication_factor: usize,
}

impl PolicyContext {
    /// A context describing an idle system.
    pub fn idle(replication_factor: usize) -> Self {
        PolicyContext::from_rates(0.0, 0.0, 0.0, replication_factor)
    }

    /// A context with a point-mass (zero-spread) propagation time — the
    /// scalar model's view of the world.
    pub fn from_rates(
        read_rate: f64,
        write_rate: f64,
        tp_secs: f64,
        replication_factor: usize,
    ) -> Self {
        PolicyContext {
            read_rate,
            write_rate,
            tp_secs,
            staleness: StalenessEstimate::deterministic(tp_secs),
            replication_factor,
        }
    }
}

/// A strategy that picks the consistency level for upcoming read operations.
pub trait ConsistencyPolicy: Send {
    /// A short, stable name used in experiment reports (e.g. `"harmony-20"`).
    fn name(&self) -> String;

    /// The consistency level reads should use given the current context.
    fn read_level(&mut self, ctx: &PolicyContext) -> ConsistencyLevel;

    /// The consistency level writes should use. The paper leaves writes at
    /// level `ONE` and adapts only reads; policies may override this.
    fn write_level(&mut self, _ctx: &PolicyContext) -> ConsistencyLevel {
        ConsistencyLevel::One
    }

    /// The estimated stale-read probability the policy last computed, if it
    /// computes one (used to reproduce Figure 4).
    fn last_estimate(&self) -> Option<f64> {
        None
    }

    /// The application-tolerated stale-read rate the policy enforces, if it
    /// enforces one. Policies exposing a tolerance opt into the controller's
    /// per-key split decisions: hot keys are escalated individually against
    /// this tolerance while the policy's own decision becomes the cheap
    /// default for the cold tail. Static baselines return `None` and are
    /// never split.
    fn tolerated_stale_rate(&self) -> Option<f64> {
        None
    }
}

/// The paper's adaptive policy: estimate the stale-read rate, compare with the
/// application-tolerated rate, and pick `ONE` or the computed `Xn`.
#[derive(Debug, Clone)]
pub struct HarmonyPolicy {
    app_stale_rate: f64,
    model: StaleReadModel,
    last_estimate: f64,
    last_decision: ConsistencyDecision,
}

impl HarmonyPolicy {
    /// Creates a Harmony policy for a store with the given replication factor
    /// and an application-tolerated stale-read rate (`app_stale_rate`,
    /// a fraction in `[0, 1]`; e.g. 0.2 for the paper's "Harmony-20%").
    pub fn new(replication_factor: usize, app_stale_rate: f64) -> Self {
        HarmonyPolicy {
            app_stale_rate: app_stale_rate.clamp(0.0, 1.0),
            model: StaleReadModel::new(replication_factor),
            last_estimate: 0.0,
            last_decision: ConsistencyDecision::Eventual,
        }
    }

    /// The tolerated stale-read rate.
    pub fn app_stale_rate(&self) -> f64 {
        self.app_stale_rate
    }

    /// The most recent decision taken.
    pub fn last_decision(&self) -> ConsistencyDecision {
        self.last_decision
    }
}

impl ConsistencyPolicy for HarmonyPolicy {
    fn name(&self) -> String {
        format!("harmony-{:.0}", self.app_stale_rate * 100.0)
    }

    fn read_level(&mut self, ctx: &PolicyContext) -> ConsistencyLevel {
        // The queueing-aware estimate: integrates the closed form over the
        // propagation-time distribution, distinguishing a high-but-stable
        // backlog (narrow spread — stay eventual or raise a few replicas)
        // from a diverging queue (go strong).
        self.last_estimate =
            self.model
                .stale_probability_estimate(ctx.read_rate, ctx.write_rate, &ctx.staleness);
        // On a diverging queue the decision scheme escalates to all N
        // replicas (the propagation window is effectively unbounded) unless
        // the tolerance already covers the ceiling estimate.
        let decision = decide_with_estimate(
            &self.model,
            self.app_stale_rate,
            ctx.read_rate,
            ctx.write_rate,
            &ctx.staleness,
        );
        self.last_decision = decision;
        match decision {
            ConsistencyDecision::Eventual => ConsistencyLevel::One,
            ConsistencyDecision::Replicas(x) => {
                ConsistencyLevel::from_replica_count(x, ctx.replication_factor)
            }
        }
    }

    fn last_estimate(&self) -> Option<f64> {
        Some(self.last_estimate)
    }

    fn tolerated_stale_rate(&self) -> Option<f64> {
        Some(self.app_stale_rate)
    }
}

/// The static baselines of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StaticPolicy {
    /// Always read at `ONE` (Cassandra's static eventual consistency).
    Eventual,
    /// Always read at `ALL` (strong consistency).
    Strong,
    /// Always read at `QUORUM`.
    Quorum,
    /// Always read at an explicit replica count.
    Fixed(usize),
}

impl ConsistencyPolicy for StaticPolicy {
    fn name(&self) -> String {
        match self {
            StaticPolicy::Eventual => "eventual".to_string(),
            StaticPolicy::Strong => "strong".to_string(),
            StaticPolicy::Quorum => "quorum".to_string(),
            StaticPolicy::Fixed(x) => format!("fixed-{x}"),
        }
    }

    fn read_level(&mut self, ctx: &PolicyContext) -> ConsistencyLevel {
        match self {
            StaticPolicy::Eventual => ConsistencyLevel::One,
            StaticPolicy::Strong => ConsistencyLevel::All,
            StaticPolicy::Quorum => ConsistencyLevel::Quorum,
            StaticPolicy::Fixed(x) => {
                ConsistencyLevel::from_replica_count(*x, ctx.replication_factor)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(read_rate: f64, write_rate: f64, tp_secs: f64) -> PolicyContext {
        PolicyContext::from_rates(read_rate, write_rate, tp_secs, 5)
    }

    #[test]
    fn harmony_names_follow_paper_convention() {
        assert_eq!(HarmonyPolicy::new(5, 0.2).name(), "harmony-20");
        assert_eq!(HarmonyPolicy::new(5, 0.4).name(), "harmony-40");
        assert_eq!(HarmonyPolicy::new(5, 0.6).name(), "harmony-60");
    }

    #[test]
    fn harmony_idle_system_reads_at_one() {
        let mut p = HarmonyPolicy::new(5, 0.2);
        assert_eq!(p.read_level(&PolicyContext::idle(5)), ConsistencyLevel::One);
        assert_eq!(p.last_estimate(), Some(0.0));
    }

    #[test]
    fn harmony_under_heavy_updates_raises_the_level() {
        let mut p = HarmonyPolicy::new(5, 0.2);
        let level = p.read_level(&ctx(3000.0, 2500.0, 0.002));
        assert_ne!(level, ConsistencyLevel::One);
        assert!(p.last_estimate().unwrap() > 0.2);
        assert!(level.required_acks(5) > 1);
    }

    #[test]
    fn harmony_zero_tolerance_reads_all_under_load() {
        let mut p = HarmonyPolicy::new(5, 0.0);
        let level = p.read_level(&ctx(3000.0, 2500.0, 0.002));
        assert_eq!(level.required_acks(5), 5);
    }

    #[test]
    fn higher_tolerance_never_needs_more_replicas() {
        let context = ctx(2000.0, 1600.0, 0.0015);
        let mut prev = usize::MAX;
        for asr in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
            let mut p = HarmonyPolicy::new(5, asr);
            let acks = p.read_level(&context).required_acks(5);
            assert!(acks <= prev, "asr={asr}");
            prev = acks;
        }
    }

    #[test]
    fn harmony_distinguishes_stable_backlog_from_diverging_queue() {
        // Same rates and network Tp; the only difference is the queue state.
        let base = ctx(3000.0, 2500.0, 0.00002);
        let mut stable = base;
        stable.staleness.queue_wait_secs = 0.05; // 50 ms of uniform backlog
        stable.staleness.utilization = 0.99;
        let mut diverging = stable;
        diverging.staleness.diverging = true;

        let mut p = HarmonyPolicy::new(5, 0.4);
        let stable_level = p.read_level(&stable);
        let stable_estimate = p.last_estimate().unwrap();
        let diverging_level = p.read_level(&diverging);
        let diverging_estimate = p.last_estimate().unwrap();

        // A high but perfectly uniform backlog does not widen the window:
        // the policy keeps cheap reads instead of collapsing to ALL.
        assert!(
            stable_level.required_acks(5) < 5,
            "stable backlog escalated to {stable_level}"
        );
        // A diverging queue pins the estimate at its ceiling and goes strong.
        assert_eq!(diverging_level.required_acks(5), 5);
        assert!(diverging_estimate >= stable_estimate);
    }

    #[test]
    fn queue_spread_raises_the_level() {
        let calm = ctx(3000.0, 2500.0, 0.00002);
        let mut spread = calm;
        spread.staleness.spread_mean_secs = 0.0005;
        spread.staleness.spread_variance_secs2 = 0.0005f64.powi(2) / 2.0;
        let mut p = HarmonyPolicy::new(5, 0.4);
        let calm_acks = p.read_level(&calm).required_acks(5);
        let calm_estimate = p.last_estimate().unwrap();
        let spread_acks = p.read_level(&spread).required_acks(5);
        let spread_estimate = p.last_estimate().unwrap();
        assert!(spread_estimate > calm_estimate);
        assert!(spread_acks >= calm_acks);
        assert!(spread_acks > 1);
    }

    #[test]
    fn harmony_writes_default_to_one() {
        let mut p = HarmonyPolicy::new(5, 0.2);
        assert_eq!(p.write_level(&ctx(1.0, 1.0, 0.001)), ConsistencyLevel::One);
    }

    #[test]
    fn tolerance_is_clamped() {
        assert_eq!(HarmonyPolicy::new(5, 7.0).app_stale_rate(), 1.0);
        assert_eq!(HarmonyPolicy::new(5, -0.3).app_stale_rate(), 0.0);
    }

    #[test]
    fn static_policies_ignore_context() {
        let busy = ctx(10_000.0, 10_000.0, 0.05);
        assert_eq!(
            StaticPolicy::Eventual.read_level(&busy),
            ConsistencyLevel::One
        );
        assert_eq!(
            StaticPolicy::Strong.read_level(&busy),
            ConsistencyLevel::All
        );
        assert_eq!(
            StaticPolicy::Quorum.read_level(&busy),
            ConsistencyLevel::Quorum
        );
        assert_eq!(
            StaticPolicy::Fixed(4).read_level(&busy),
            ConsistencyLevel::Replicas(4)
        );
        assert_eq!(
            StaticPolicy::Fixed(1).read_level(&busy),
            ConsistencyLevel::One
        );
    }

    #[test]
    fn static_policy_names() {
        assert_eq!(StaticPolicy::Eventual.name(), "eventual");
        assert_eq!(StaticPolicy::Strong.name(), "strong");
        assert_eq!(StaticPolicy::Quorum.name(), "quorum");
        assert_eq!(StaticPolicy::Fixed(2).name(), "fixed-2");
        assert_eq!(StaticPolicy::Eventual.last_estimate(), None);
    }

    #[test]
    fn only_tolerance_policies_opt_into_splitting() {
        assert_eq!(HarmonyPolicy::new(5, 0.2).tolerated_stale_rate(), Some(0.2));
        assert_eq!(StaticPolicy::Eventual.tolerated_stale_rate(), None);
        assert_eq!(StaticPolicy::Strong.tolerated_stale_rate(), None);
    }
}

//! Constant-memory heavy-hitter tracking for per-key (hot-spot) staleness.
//!
//! Under the Zipfian/hotspot key distributions YCSB makes canonical, a
//! handful of keys receives a large share of all updates. A cluster-wide
//! staleness estimate is blind to that: it either escalates *every* read to
//! protect the hot keys, or lets the hot keys read stale to keep the cold
//! tail cheap. The per-key model needs to know *which* keys are hot and how
//! fast each one is being written — in constant memory, because the keyspace
//! is unbounded.
//!
//! Keys enter the sketch as interned [`KeyId`]s (4 bytes, `Copy`), so an
//! observation is a small-integer hash — no `String` hashing or cloning
//! anywhere in the tracking path.
//!
//! [`SpaceSavingSketch`] is the classic space-saving algorithm (Metwally,
//! Agrawal, El Abbadi 2005): at most `capacity` counters; a miss at capacity
//! evicts the minimum counter and charges its value to the newcomer as
//! `error`. The standard guarantees hold and are property-tested:
//!
//! * `count(k)` never under-estimates the true frequency;
//! * the over-estimate is bounded by the minimum counter, which is itself
//!   bounded by `total / capacity`;
//! * any key whose true frequency exceeds `total / capacity` is tracked.
//!
//! [`HotKeyTracker`] layers sweep-to-sweep rate estimation on top: per-sweep
//! deltas of the (monotone) sketch counters become smoothed per-key write
//! arrival rates, and a share threshold turns the tracked set into the *hot
//! set* the split controller escalates. Everything is deterministic — no
//! randomness, stable iteration order, stable tie-breaking — so two runs
//! with the same seed produce identical hot sets.

use harmony_store::keys::KeyId;
use std::collections::HashMap;

/// One tracked key of a [`SpaceSavingSketch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchEntry {
    /// The tracked key.
    pub key: KeyId,
    /// Estimated occurrence count (an over-approximation of the true count).
    pub count: u64,
    /// Maximum possible over-estimation: the evicted counter value this entry
    /// inherited when it entered the sketch (0 if it never displaced anyone).
    pub error: u64,
}

impl SketchEntry {
    /// The guaranteed (certain) part of the count: `count - error` never
    /// exceeds the key's true frequency.
    pub fn guaranteed(&self) -> u64 {
        self.count - self.error
    }
}

/// The space-saving sketch: frequency estimates for the heaviest keys of a
/// stream using at most `capacity` counters.
#[derive(Debug, Clone)]
pub struct SpaceSavingSketch {
    capacity: usize,
    total: u64,
    /// Entries in insertion order (stable across runs — the stream order is
    /// deterministic under a fixed seed, so this is too).
    entries: Vec<SketchEntry>,
    index: HashMap<KeyId, usize>,
}

impl SpaceSavingSketch {
    /// Creates a sketch with the given counter capacity (clamped to >= 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpaceSavingSketch {
            capacity,
            total: 0,
            entries: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity),
        }
    }

    /// The counter capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total number of observations fed to the sketch.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of keys currently tracked (never exceeds the capacity).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The tracked entries, in insertion order.
    pub fn entries(&self) -> &[SketchEntry] {
        &self.entries
    }

    /// The estimated count for `key`, if tracked. The estimate
    /// over-approximates the true count by at most the minimum counter.
    pub fn estimate(&self, key: KeyId) -> Option<u64> {
        self.index.get(&key).map(|&i| self.entries[i].count)
    }

    /// The full entry for `key`, if tracked.
    pub fn entry(&self, key: KeyId) -> Option<&SketchEntry> {
        self.index.get(&key).map(|&i| &self.entries[i])
    }

    /// The smallest counter value (0 for an empty sketch). Bounds both the
    /// over-estimation error and the count of any untracked key.
    pub fn min_count(&self) -> u64 {
        self.entries.iter().map(|e| e.count).min().unwrap_or(0)
    }

    /// Observes one occurrence of `key`.
    ///
    /// Hits are `O(1)`; a miss at capacity evicts the minimum counter with a
    /// linear `O(capacity)` scan. The scan is deliberate: it keeps the
    /// eviction rule obviously correct (the property suite leans on it) and
    /// its cost is bounded by the sweep cadence — one monitoring sweep feeds
    /// at most one sweep interval's writes, and a backend whose sample
    /// buffer could fill (`WRITE_KEY_SAMPLE_CAP`) is by definition not being
    /// swept, so `observe` never sees the full buffer. Swap in the classic
    /// stream-summary bucket structure if capacities ever grow by orders of
    /// magnitude.
    pub fn observe(&mut self, key: KeyId) {
        self.total += 1;
        if let Some(&i) = self.index.get(&key) {
            self.entries[i].count += 1;
            return;
        }
        if self.entries.len() < self.capacity {
            self.index.insert(key, self.entries.len());
            self.entries.push(SketchEntry {
                key,
                count: 1,
                error: 0,
            });
            return;
        }
        // Evict the minimum counter (first minimum in insertion order — a
        // deterministic tie-break) and charge its value to the newcomer.
        let (victim, _) = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(i, e)| (e.count, *i))
            .expect("capacity >= 1");
        let entry = &mut self.entries[victim];
        self.index.remove(&entry.key);
        entry.error = entry.count;
        entry.count += 1;
        entry.key = key;
        self.index.insert(key, victim);
    }

    /// Merges `other` into `self` — the classic mergeable-summaries rule
    /// (Agarwal et al. 2012) the sharded runtime uses to combine per-shard
    /// sketches into one cluster view at the monitoring tick.
    ///
    /// For a key tracked on both sides, counts and errors add. For a key
    /// tracked on one side only, the other side may have seen it up to its
    /// minimum counter times, so that minimum is added to *both* the count
    /// and the error (keeping the estimate an over-approximation and the
    /// guaranteed count an under-approximation of the true combined
    /// frequency). The union is then truncated to `self.capacity`, keeping
    /// the largest counters with a deterministic `(count desc, key asc)`
    /// order — which also preserves the untracked-key bound: every kept
    /// counter is at least `self_min + other_min`, and no dropped or unseen
    /// key can exceed that.
    ///
    /// All sketch guarantees (`estimate >= true`, `guaranteed <= true`,
    /// `untracked true count <= min_count`) survive the merge; the property
    /// suite pins them against a single global sketch over the combined
    /// stream.
    pub fn merge(&mut self, other: &SpaceSavingSketch) {
        if other.total == 0 {
            return;
        }
        let self_min = if self.len() >= self.capacity {
            self.min_count()
        } else {
            0
        };
        let other_min = if other.len() >= other.capacity {
            other.min_count()
        } else {
            0
        };
        let mut combined: Vec<SketchEntry> =
            Vec::with_capacity(self.entries.len() + other.entries.len());
        for e in &self.entries {
            match other.entry(e.key) {
                Some(o) => combined.push(SketchEntry {
                    key: e.key,
                    count: e.count + o.count,
                    error: e.error + o.error,
                }),
                None => combined.push(SketchEntry {
                    key: e.key,
                    count: e.count + other_min,
                    error: e.error + other_min,
                }),
            }
        }
        for o in &other.entries {
            if self.index.contains_key(&o.key) {
                continue;
            }
            combined.push(SketchEntry {
                key: o.key,
                count: o.count + self_min,
                error: o.error + self_min,
            });
        }
        combined.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.key.cmp(&b.key)));
        combined.truncate(self.capacity);
        self.total += other.total;
        self.entries = combined;
        self.index = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.key, i))
            .collect();
    }
}

/// A key the tracker currently considers hot, with its smoothed write rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotKey {
    /// The key.
    pub key: KeyId,
    /// Guaranteed occurrence count (`count - error`, a certain lower bound).
    pub guaranteed_count: u64,
    /// Guaranteed share of all observations (`guaranteed_count / total`).
    pub share: f64,
    /// Smoothed per-key arrival rate (observations per second).
    pub rate: f64,
}

/// Smoothing factor of the per-key rate EWMA (sweep-to-sweep).
const RATE_ALPHA: f64 = 0.5;

/// How many observations per sketch counter must accumulate before any key
/// may be declared hot — keeps small-sample noise (every early key looks
/// "hot" relative to a tiny total) from producing phantom hot sets under
/// uniform load.
const WARMUP_PER_COUNTER: u64 = 20;

/// Sweep-to-sweep heavy-hitter tracking: a [`SpaceSavingSketch`] plus
/// smoothed per-key arrival rates and the hot-set selection rule.
#[derive(Debug)]
pub struct HotKeyTracker {
    sketch: SpaceSavingSketch,
    /// Minimum guaranteed share for a key to count as hot.
    min_share: f64,
    /// Counter values at the previous sweep, for delta-based rates.
    prev_counts: HashMap<KeyId, u64>,
    /// Smoothed per-key arrival rates.
    rates: HashMap<KeyId, f64>,
}

impl HotKeyTracker {
    /// Creates a tracker with the given sketch capacity and hot-share
    /// threshold (a fraction of all observed writes; clamped to `[0, 1]`).
    pub fn new(capacity: usize, min_share: f64) -> Self {
        HotKeyTracker {
            sketch: SpaceSavingSketch::new(capacity),
            min_share: min_share.clamp(0.0, 1.0),
            prev_counts: HashMap::new(),
            rates: HashMap::new(),
        }
    }

    /// Read-only access to the underlying sketch.
    pub fn sketch(&self) -> &SpaceSavingSketch {
        &self.sketch
    }

    /// Feeds one monitoring sweep's batch of observed write keys and updates
    /// the per-key rate estimates over the sweep's `elapsed_secs`.
    pub fn observe_sweep(&mut self, keys: &[KeyId], elapsed_secs: f64) {
        for &key in keys {
            self.sketch.observe(key);
        }
        self.update_rates(elapsed_secs);
    }

    /// Replaces the tracked sketch with an externally merged one (the
    /// sharded runtime folds per-shard cumulative sketches into a single
    /// cluster sketch at every monitoring tick) and updates the per-key
    /// rates from the same sweep-to-sweep count deltas as
    /// [`HotKeyTracker::observe_sweep`]. Because each shard's counters are
    /// cumulative and the merge is monotone, the deltas against the
    /// previous merged sketch are exactly the sweep's new arrivals.
    pub fn observe_merged(&mut self, merged: SpaceSavingSketch, elapsed_secs: f64) {
        self.sketch = merged;
        self.update_rates(elapsed_secs);
    }

    /// Sweep-to-sweep rate maintenance over the current sketch contents.
    fn update_rates(&mut self, elapsed_secs: f64) {
        if elapsed_secs <= 0.0 {
            return;
        }
        for entry in self.sketch.entries() {
            // A key that entered the sketch since the last sweep has no
            // baseline; its guaranteed count is entirely new arrivals (they
            // happened after it displaced the previous minimum), which is the
            // right first rate sample.
            let baseline = self
                .prev_counts
                .get(&entry.key)
                .copied()
                .unwrap_or(entry.error);
            let delta = entry.count.saturating_sub(baseline);
            let instantaneous = delta as f64 / elapsed_secs;
            let rate = match self.rates.get(&entry.key) {
                Some(prev) => RATE_ALPHA * instantaneous + (1.0 - RATE_ALPHA) * prev,
                None => instantaneous,
            };
            self.rates.insert(entry.key, rate);
            self.prev_counts.insert(entry.key, entry.count);
        }
        // Evicted keys must not leak memory (or stale rates back) if the key
        // re-enters the sketch later.
        let tracked: std::collections::HashSet<KeyId> =
            self.sketch.entries().iter().map(|e| e.key).collect();
        self.prev_counts.retain(|k, _| tracked.contains(k));
        self.rates.retain(|k, _| tracked.contains(k));
    }

    /// Whether `entry` clears the hot thresholds: enough total observations
    /// (warmup), a guaranteed count above the `total / capacity` noise floor,
    /// and a guaranteed share above the configured minimum.
    fn is_hot(&self, entry: &SketchEntry) -> bool {
        let total = self.sketch.total();
        if total < WARMUP_PER_COUNTER * self.sketch.capacity() as u64 {
            return false;
        }
        let noise_floor = total / self.sketch.capacity() as u64;
        let guaranteed = entry.guaranteed();
        guaranteed > noise_floor && guaranteed as f64 / total as f64 > self.min_share
    }

    /// The current hot set: tracked keys whose *guaranteed* share exceeds
    /// both the configured threshold and the `total / capacity` noise floor,
    /// once enough observations have accumulated. Sorted by descending
    /// guaranteed count (key id as the deterministic tie-break).
    pub fn hot_keys(&self) -> Vec<HotKey> {
        let total = self.sketch.total();
        let mut hot: Vec<HotKey> = self
            .sketch
            .entries()
            .iter()
            .filter(|e| self.is_hot(e))
            .map(|e| HotKey {
                key: e.key,
                guaranteed_count: e.guaranteed(),
                share: e.guaranteed() as f64 / total as f64,
                rate: self.rates.get(&e.key).copied().unwrap_or(0.0),
            })
            .collect();
        hot.sort_by(|a, b| {
            b.guaranteed_count
                .cmp(&a.guaranteed_count)
                .then_with(|| a.key.cmp(&b.key))
        });
        hot
    }

    /// Upper bound on the write share of any key *outside* the current hot
    /// set — the space-saving guarantee turned into a cold-tail bound. An
    /// untracked key's true count cannot exceed the minimum counter (only
    /// relevant once the sketch is at capacity); a tracked-but-not-hot key is
    /// bounded by its own (over-approximating) counter. The split controller
    /// decides the *default* consistency level at this per-key intensity, so
    /// the cold tail stops paying for the hot keys' pressure while every
    /// non-hot key stays provably covered.
    pub fn cold_share_bound(&self) -> f64 {
        let total = self.sketch.total();
        if total == 0 {
            return 1.0;
        }
        let untracked = if self.sketch.len() >= self.sketch.capacity() {
            self.sketch.min_count()
        } else {
            0
        };
        let bound = self
            .sketch
            .entries()
            .iter()
            .filter(|e| !self.is_hot(e))
            .map(|e| e.count)
            .fold(untracked, u64::max);
        (bound as f64 / total as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: KeyId = KeyId(0);
    const B: KeyId = KeyId(1);
    const C: KeyId = KeyId(2);
    const HOT: KeyId = KeyId(500_000);

    fn cold(i: u64) -> KeyId {
        KeyId(1_000 + i as u32)
    }

    #[test]
    fn counts_exactly_below_capacity() {
        let mut s = SpaceSavingSketch::new(8);
        for _ in 0..5 {
            s.observe(A);
        }
        for _ in 0..3 {
            s.observe(B);
        }
        assert_eq!(s.estimate(A), Some(5));
        assert_eq!(s.estimate(B), Some(3));
        assert_eq!(s.estimate(C), None);
        assert_eq!(s.total(), 8);
        assert_eq!(s.entry(A).unwrap().error, 0);
        assert_eq!(s.entry(A).unwrap().guaranteed(), 5);
    }

    #[test]
    fn capacity_is_never_exceeded_and_eviction_charges_error() {
        let mut s = SpaceSavingSketch::new(2);
        s.observe(A);
        s.observe(A);
        s.observe(B);
        // C evicts the minimum (B with count 1) and inherits its count.
        s.observe(C);
        assert_eq!(s.len(), 2);
        assert_eq!(s.estimate(B), None);
        let c = s.entry(C).unwrap();
        assert_eq!(c.count, 2);
        assert_eq!(c.error, 1);
        assert_eq!(c.guaranteed(), 1);
        // The heavy key is untouched.
        assert_eq!(s.estimate(A), Some(2));
    }

    #[test]
    fn eviction_tie_break_is_deterministic() {
        let build = || {
            let mut s = SpaceSavingSketch::new(3);
            for k in [KeyId(0), KeyId(1), KeyId(2), KeyId(3), KeyId(4), KeyId(3)] {
                s.observe(k);
            }
            s.entries().to_vec()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn heavy_key_survives_a_long_tail() {
        let mut s = SpaceSavingSketch::new(10);
        for i in 0..1000 {
            s.observe(HOT);
            s.observe(cold(i));
        }
        // True frequency 1000/2000 = 50% >> total/capacity: must be tracked,
        // with an estimate at least its true count.
        assert!(s.estimate(HOT).unwrap() >= 1000);
        assert!(s.entry(HOT).unwrap().guaranteed() <= 1000 + 1);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut s = SpaceSavingSketch::new(0);
        s.observe(A);
        s.observe(B);
        assert_eq!(s.capacity(), 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn tracker_warmup_produces_no_hot_keys() {
        let mut t = HotKeyTracker::new(4, 0.02);
        t.observe_sweep(&[A, A, B], 1.0);
        assert!(t.hot_keys().is_empty(), "warmup must suppress hot keys");
    }

    #[test]
    fn tracker_finds_the_hot_key_and_its_rate() {
        let mut t = HotKeyTracker::new(4, 0.02);
        // 10 sweeps of 1 s: 60 writes to HOT, 40 spread over a cold tail.
        for sweep in 0..10 {
            let mut batch: Vec<KeyId> = vec![HOT; 60];
            for i in 0..40 {
                batch.push(cold((sweep * 40 + i) % 16));
            }
            t.observe_sweep(&batch, 1.0);
        }
        let hot = t.hot_keys();
        assert_eq!(hot.len(), 1, "hot set: {hot:?}");
        assert_eq!(hot[0].key, HOT);
        assert!(hot[0].share > 0.5, "share = {}", hot[0].share);
        // The smoothed rate converges to the true 60 writes/s.
        assert!((hot[0].rate - 60.0).abs() < 5.0, "rate = {}", hot[0].rate);
    }

    #[test]
    fn tracker_under_uniform_load_stays_empty() {
        let mut t = HotKeyTracker::new(8, 0.02);
        for sweep in 0..30u64 {
            let batch: Vec<KeyId> = (0..100u64)
                .map(|i| cold((sweep * 100 + i * 37) % 500))
                .collect();
            t.observe_sweep(&batch, 1.0);
        }
        assert!(
            t.hot_keys().is_empty(),
            "uniform load produced {:?}",
            t.hot_keys()
        );
    }

    #[test]
    fn tracker_is_deterministic() {
        let hot_a = KeyId(900_000);
        let hot_b = KeyId(900_001);
        let run = || {
            let mut t = HotKeyTracker::new(6, 0.01);
            for sweep in 0..12u64 {
                let batch: Vec<KeyId> = (0..80u64)
                    .map(|i| {
                        let x = (sweep * 80 + i) * 2654435761 % 100;
                        if x < 40 {
                            hot_a
                        } else if x < 60 {
                            hot_b
                        } else {
                            cold(x % 23)
                        }
                    })
                    .collect();
                t.observe_sweep(&batch, 0.5);
            }
            t.hot_keys()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.len() >= 2);
        assert_eq!(a[0].key, hot_a);
        assert_eq!(a[1].key, hot_b);
    }

    #[test]
    fn cold_share_bound_excludes_hot_keys_and_covers_the_tail() {
        let mut t = HotKeyTracker::new(4, 0.02);
        // No observations: everything is possible.
        assert_eq!(t.cold_share_bound(), 1.0);
        for sweep in 0..10u64 {
            let mut batch: Vec<KeyId> = (0..60).map(|_| HOT).collect();
            for i in 0..40u64 {
                batch.push(cold((sweep * 40 + i) % 16));
            }
            t.observe_sweep(&batch, 1.0);
        }
        let hot = t.hot_keys();
        assert_eq!(hot.len(), 1);
        let bound = t.cold_share_bound();
        // The hot key (share 0.6) is excluded; every cold key's true share
        // (40% spread over 16 keys = 2.5% each) is covered by the bound,
        // which itself stays far below the hot share.
        assert!(bound >= 0.025, "bound = {bound}");
        assert!(bound < 0.3, "bound = {bound}");
    }

    #[test]
    fn rates_decay_when_a_key_cools_down() {
        let mut t = HotKeyTracker::new(4, 0.0);
        let hot_batch: Vec<KeyId> = (0..100).map(|_| A).collect();
        for _ in 0..10 {
            t.observe_sweep(&hot_batch, 1.0);
        }
        let busy = t.hot_keys()[0].rate;
        for _ in 0..6 {
            t.observe_sweep(&[], 1.0);
        }
        let calm = t.hot_keys()[0].rate;
        assert!(busy > 90.0, "busy = {busy}");
        assert!(calm < busy / 10.0, "calm = {calm}");
    }
}

//! Aggregation of per-probe latency observations into the single `Ln` figure
//! the estimation model consumes.
//!
//! The paper aggregates ping results across all node pairs; how conservative
//! that aggregation is (mean vs. a high percentile) changes how pessimistic
//! the propagation-time estimate — and therefore Harmony's chosen consistency
//! level — becomes. The ablation benchmark `ablation_monitor_period` sweeps
//! these options.

use serde::{Deserialize, Serialize};

/// How to fold a set of latency observations into one value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LatencyAggregation {
    /// Arithmetic mean of the observations.
    Mean,
    /// Maximum observation (most conservative).
    Max,
    /// 95th percentile (robust to a single outlier, still conservative).
    P95,
}

impl LatencyAggregation {
    /// Applies the aggregation. Returns 0.0 for an empty slice.
    pub fn apply(&self, observations_ms: &[f64]) -> f64 {
        if observations_ms.is_empty() {
            return 0.0;
        }
        match self {
            LatencyAggregation::Mean => {
                observations_ms.iter().sum::<f64>() / observations_ms.len() as f64
            }
            LatencyAggregation::Max => observations_ms
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max),
            LatencyAggregation::P95 => percentile(observations_ms, 0.95),
        }
    }
}

/// Nearest-rank percentile (q in `[0, 1]`) of a slice; the slice does not need
/// to be sorted.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_max_p95() {
        let obs = vec![1.0, 2.0, 3.0, 4.0, 100.0];
        assert!((LatencyAggregation::Mean.apply(&obs) - 22.0).abs() < 1e-9);
        assert_eq!(LatencyAggregation::Max.apply(&obs), 100.0);
        assert_eq!(LatencyAggregation::P95.apply(&obs), 100.0);
    }

    #[test]
    fn p95_ignores_the_tail_with_enough_samples() {
        let mut obs = vec![1.0; 99];
        obs.push(1000.0);
        assert_eq!(LatencyAggregation::P95.apply(&obs), 1.0);
    }

    #[test]
    fn empty_observations_give_zero() {
        for agg in [
            LatencyAggregation::Mean,
            LatencyAggregation::Max,
            LatencyAggregation::P95,
        ] {
            assert_eq!(agg.apply(&[]), 0.0);
        }
    }

    #[test]
    fn single_observation_is_its_own_aggregate() {
        for agg in [
            LatencyAggregation::Mean,
            LatencyAggregation::Max,
            LatencyAggregation::P95,
        ] {
            assert_eq!(agg.apply(&[3.5]), 3.5);
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = vec![10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 0.25), 10.0);
        assert_eq!(percentile(&v, 0.5), 20.0);
        assert_eq!(percentile(&v, 0.75), 30.0);
        assert_eq!(percentile(&v, 1.0), 40.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        // Unsorted input works too.
        assert_eq!(percentile(&[30.0, 10.0, 20.0], 0.5), 20.0);
    }

    #[test]
    fn percentile_clamps_q() {
        let v = vec![1.0, 2.0];
        assert_eq!(percentile(&v, -1.0), 1.0);
        assert_eq!(percentile(&v, 2.0), 2.0);
    }
}

//! The probing interface between the monitor and the storage system.
//!
//! The monitor needs two signals: cumulative read/write counters and a sample
//! of pairwise network latency. Both the discrete-event [`Cluster`] and any
//! other backend (the real-threaded live cluster, or a mock in tests) expose
//! them through [`ClusterProbe`].
//!
//! Per-key signals travel as interned [`KeyId`]s: the write-key sample
//! stream and the per-key backlog probe move 4-byte `Copy` ids, and
//! [`ClusterProbe::key_name`] resolves an id back to its human-readable name
//! only where a report needs one (hot-set decisions, sweep tables).

use harmony_sim::clock::SimTime;
use harmony_store::cluster::Cluster;
use harmony_store::keys::KeyId;
use harmony_store::node::WriteStageTelemetry;

/// A source of monitoring signals.
pub trait ClusterProbe {
    /// Cumulative replica read operations served across the cluster
    /// (the `nodetool` read-count analogue).
    fn total_reads(&self) -> u64;
    /// Cumulative replica write operations applied across the cluster
    /// (client writes only; repair traffic is excluded, as repairs do not
    /// represent application updates).
    fn total_writes(&self) -> u64;
    /// Mean inter-node latency in milliseconds as observed by a probe sweep
    /// (the `ping` analogue).
    fn probe_latency_ms(&self) -> f64;
    /// Number of storage nodes (used to account for sweep duration).
    fn node_count(&self) -> usize;
    /// Number of nodes currently *serving* traffic. Dead or decommissioned
    /// replicas produce no telemetry, and "no telemetry" must not read as "a
    /// 0.0 rate": per-replica normalisations divide by this count, not by
    /// [`ClusterProbe::node_count`], so a silent node cannot drag the
    /// cluster estimate down. Backends without a liveness signal report the
    /// full node count.
    fn live_node_count(&self) -> usize {
        self.node_count()
    }
    /// Mean mutation-stage backlog per node, expressed as the expected extra
    /// milliseconds a replica write waits before being applied (the
    /// `nodetool tpstats` pending-MutationStage analogue). Near saturation
    /// this queueing delay dominates the propagation time; backends that
    /// cannot measure it report zero and the estimate falls back to the pure
    /// network model.
    fn mutation_backlog_ms(&self) -> f64 {
        0.0
    }
    /// Per-node mutation-stage backlog in milliseconds (one entry per node).
    /// The *dispersion* of these values across replicas is the queue-wait
    /// spread signal of the queueing-aware staleness model; backends that can
    /// only measure the aggregate report an empty vector and the model
    /// degrades to the scalar backlog.
    fn replica_backlog_ms(&self) -> Vec<f64> {
        Vec::new()
    }
    /// Cumulative write-stage telemetry per node (arrivals, completions,
    /// accumulated sampled service times). The monitor turns deltas of these
    /// counters into per-replica arrival rates and the measured service-time
    /// mean/SCV the M/G/1 model consumes. Backends that cannot measure it
    /// report an empty vector.
    fn write_stage_telemetry(&self) -> Vec<WriteStageTelemetry> {
        Vec::new()
    }
    /// Per-node mutation-stage service concurrency (worker slots). Used to
    /// normalise measured service times into effective per-slot-group values.
    fn write_stage_concurrency(&self) -> usize {
        1
    }
    /// Drains the keys of client writes observed since the previous sweep —
    /// the sample stream feeding the monitor's heavy-hitter sketch. Backends
    /// that cannot observe per-key writes report an empty batch and the
    /// per-key staleness layer degrades to the global model.
    fn drain_write_key_samples(&self) -> Vec<KeyId> {
        Vec::new()
    }
    /// Pre-built cumulative heavy-hitter sketches, one per shard, for
    /// backends that shard the key space across event loops and count write
    /// keys locally. When this returns `Some`, the monitor folds the shard
    /// sketches into one cluster sketch (mergeable-summaries rule) instead
    /// of consuming the raw sample stream; key ids inside the sketches must
    /// already be in the backend's *global* id space. Single-loop backends
    /// keep the default `None` and the sample-stream path is used,
    /// byte-identically to before sharding existed.
    fn write_key_sketches(&self) -> Option<Vec<crate::heavy_hitters::SpaceSavingSketch>> {
        None
    }
    /// Per-key mutation backlog (milliseconds) for the given keys: the
    /// deepest per-replica pending-mutation backlog of each key, i.e. how far
    /// the laggard replica of that key is behind. Must return one entry per
    /// requested key; backends without the signal report zeros.
    fn per_key_backlog_ms(&self, keys: &[KeyId]) -> Vec<f64> {
        vec![0.0; keys.len()]
    }
    /// The human-readable name behind an interned key id, for reports and
    /// hot-set decisions. Backends without a key table fall back to a
    /// positional name.
    fn key_name(&self, key: KeyId) -> String {
        format!("key#{}", key.0)
    }
    /// A counter that advances whenever the cluster topology or fault state
    /// changes (crash, restart, partition, heal, slowdown, join,
    /// decommission). The monitor segments its trend histories on any change:
    /// a membership event shifts the backlog baseline, so a slope spanning
    /// the rebuild is spurious and must not feed the divergence detector.
    /// Backends without a fault layer report a constant and trends are never
    /// segmented.
    fn fault_epoch(&self) -> u64 {
        0
    }
    /// Accrual failure-detector suspicion (φ) per node, one entry per node
    /// in node-id order, evaluated at virtual time `now`. φ rises the longer
    /// a node has gone silent relative to its observed heartbeat cadence;
    /// the monitor can discount telemetry from highly suspected nodes so a
    /// failing replica's frozen counters do not dilute the cluster estimate.
    /// Backends without a detector report an empty vector and no discount is
    /// ever applied.
    fn node_suspicions(&self, _now: SimTime) -> Vec<f64> {
        Vec::new()
    }
}

impl ClusterProbe for Cluster {
    fn total_reads(&self) -> u64 {
        // Count client-visible reads, not per-replica fan-out: the model's λr
        // is the application's read arrival rate.
        self.totals().reads_completed
    }

    fn total_writes(&self) -> u64 {
        self.totals().writes_completed
    }

    fn probe_latency_ms(&self) -> f64 {
        // A ping-style sweep over a few random pairs: fluctuates sweep to
        // sweep, so latency spikes are visible to the controller.
        self.probe_network_latency_ms(8)
    }

    fn node_count(&self) -> usize {
        Cluster::node_count(self)
    }

    fn live_node_count(&self) -> usize {
        Cluster::live_node_count(self)
    }

    fn mutation_backlog_ms(&self) -> f64 {
        Cluster::mutation_backlog_ms(self)
    }

    fn replica_backlog_ms(&self) -> Vec<f64> {
        Cluster::replica_backlog_ms(self)
    }

    fn write_stage_telemetry(&self) -> Vec<WriteStageTelemetry> {
        Cluster::write_stage_telemetry(self)
    }

    fn write_stage_concurrency(&self) -> usize {
        self.config().node_concurrency
    }

    fn drain_write_key_samples(&self) -> Vec<KeyId> {
        Cluster::drain_write_key_samples(self)
    }

    fn per_key_backlog_ms(&self, keys: &[KeyId]) -> Vec<f64> {
        Cluster::per_key_backlog_ms(self, keys)
    }

    fn key_name(&self, key: KeyId) -> String {
        Cluster::key_name(self, key).to_string()
    }

    fn fault_epoch(&self) -> u64 {
        self.fault_state().counters().total()
    }

    fn node_suspicions(&self, now: SimTime) -> Vec<f64> {
        Cluster::node_suspicions(self, now)
    }
}

/// A scripted probe for unit tests and offline model exploration. Carries
/// its own key interner so tests keep scripting with readable names while
/// the probe surface speaks [`KeyId`].
#[derive(Debug, Clone, Default)]
pub struct MockProbe {
    /// Cumulative reads to report.
    pub reads: u64,
    /// Cumulative writes to report.
    pub writes: u64,
    /// Latency to report (ms).
    pub latency_ms: f64,
    /// Node count to report.
    pub nodes: usize,
    /// Serving-node count to report; `None` means every node is live.
    pub live_nodes: Option<usize>,
    /// Mutation backlog to report (ms).
    pub backlog_ms: f64,
    /// Per-node backlogs to report (ms); empty = not measured.
    pub replica_backlogs: Vec<f64>,
    /// Per-node write-stage telemetry to report; empty = not measured.
    pub write_telemetry: Vec<WriteStageTelemetry>,
    /// Write-stage concurrency to report (0 is treated as 1).
    pub write_concurrency: usize,
    /// Write-key samples handed out (and cleared) by the next drain call.
    pub write_keys: std::cell::RefCell<Vec<KeyId>>,
    /// Scripted per-key backlogs (ms), by key name; absent keys report zero.
    pub key_backlogs: std::collections::HashMap<String, f64>,
    /// Scripted fault epoch; bump it to simulate a topology change.
    pub epoch: u64,
    /// Scripted per-node accrual suspicions; empty = no failure detector.
    pub suspicions: Vec<f64>,
    /// Scripted per-shard cumulative sketches; `Some` switches the monitor
    /// onto the sharded sketch-merge path instead of the sample drain.
    pub sketches: Option<Vec<crate::heavy_hitters::SpaceSavingSketch>>,
    /// The interner backing the scripted key names.
    pub table: std::cell::RefCell<harmony_store::keys::KeyTable>,
}

impl MockProbe {
    /// Interns a scripted key name (idempotent), returning its id.
    pub fn intern(&self, name: &str) -> KeyId {
        self.table.borrow_mut().intern(name)
    }

    /// Replaces the pending write-key samples with the given names.
    pub fn set_write_keys<S: AsRef<str>>(&self, names: &[S]) {
        let ids: Vec<KeyId> = names.iter().map(|n| self.intern(n.as_ref())).collect();
        *self.write_keys.borrow_mut() = ids;
    }
}

impl ClusterProbe for MockProbe {
    fn total_reads(&self) -> u64 {
        self.reads
    }
    fn total_writes(&self) -> u64 {
        self.writes
    }
    fn probe_latency_ms(&self) -> f64 {
        self.latency_ms
    }
    fn node_count(&self) -> usize {
        self.nodes
    }
    fn live_node_count(&self) -> usize {
        self.live_nodes.unwrap_or(self.nodes)
    }
    fn mutation_backlog_ms(&self) -> f64 {
        self.backlog_ms
    }
    fn replica_backlog_ms(&self) -> Vec<f64> {
        self.replica_backlogs.clone()
    }
    fn write_stage_telemetry(&self) -> Vec<WriteStageTelemetry> {
        self.write_telemetry.clone()
    }
    fn write_stage_concurrency(&self) -> usize {
        self.write_concurrency.max(1)
    }
    fn drain_write_key_samples(&self) -> Vec<KeyId> {
        std::mem::take(&mut *self.write_keys.borrow_mut())
    }
    fn write_key_sketches(&self) -> Option<Vec<crate::heavy_hitters::SpaceSavingSketch>> {
        self.sketches.clone()
    }
    fn per_key_backlog_ms(&self, keys: &[KeyId]) -> Vec<f64> {
        let table = self.table.borrow();
        keys.iter()
            .map(|k| {
                table
                    .try_resolve(*k)
                    .and_then(|name| self.key_backlogs.get(name).copied())
                    .unwrap_or(0.0)
            })
            .collect()
    }
    fn key_name(&self, key: KeyId) -> String {
        self.table
            .borrow()
            .try_resolve(key)
            .map(str::to_string)
            .unwrap_or_else(|| format!("key#{}", key.0))
    }
    fn fault_epoch(&self) -> u64 {
        self.epoch
    }
    fn node_suspicions(&self, _now: SimTime) -> Vec<f64> {
        self.suspicions.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_sim::latency::Latency;
    use harmony_sim::rng::RngFactory;
    use harmony_sim::topology::{NetworkModel, Topology};
    use harmony_store::config::StoreConfig;

    #[test]
    fn mock_probe_reports_scripted_values() {
        let p = MockProbe {
            reads: 10,
            writes: 20,
            latency_ms: 1.5,
            nodes: 4,
            backlog_ms: 0.0,
            ..MockProbe::default()
        };
        assert_eq!(p.total_reads(), 10);
        assert_eq!(p.total_writes(), 20);
        assert_eq!(p.probe_latency_ms(), 1.5);
        assert_eq!(p.node_count(), 4);
    }

    #[test]
    fn mock_probe_interns_and_resolves_names() {
        let p = MockProbe::default();
        p.set_write_keys(&["a", "b", "a"]);
        let drained = p.drain_write_key_samples();
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[0], drained[2]);
        assert_eq!(p.key_name(drained[0]), "a");
        assert_eq!(p.key_name(drained[1]), "b");
        // Foreign ids fall back to a positional name.
        assert_eq!(p.key_name(KeyId(77)), "key#77");
        // Scripted backlogs resolve through the interner.
        let mut p = p;
        p.key_backlogs.insert("a".to_string(), 4.5);
        let a = p.intern("a");
        let b = p.intern("b");
        assert_eq!(p.per_key_backlog_ms(&[a, b]), vec![4.5, 0.0]);
    }

    #[test]
    fn cluster_probe_reflects_cluster_shape() {
        let topology = Topology::single_dc(1, 5);
        let network = NetworkModel::uniform(Latency::constant_ms(0.7));
        let cluster = Cluster::new(
            StoreConfig {
                replication_factor: 3,
                ..StoreConfig::default()
            },
            topology,
            network,
            RngFactory::new(1),
        );
        let probe: &dyn ClusterProbe = &cluster;
        assert_eq!(probe.node_count(), 5);
        assert_eq!(probe.total_reads(), 0);
        assert_eq!(probe.total_writes(), 0);
        assert!((probe.probe_latency_ms() - 0.7).abs() < 1e-9);
    }
}

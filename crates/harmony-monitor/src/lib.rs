//! # harmony-monitor
//!
//! The monitoring module of Harmony (paper §V.A): it periodically collects
//! the information the estimation model needs —
//!
//! * cumulative read/write counters from every storage node (the paper uses
//!   Cassandra's `nodetool`),
//! * inter-node network latency (the paper uses `ping`),
//!
//! converts counter deltas into access rates while accounting for the time
//! the monitoring sweep itself takes, and aggregates per-node latency probes
//! into the single `Ln` figure fed to the propagation-time model.
//!
//! The monitor is deliberately decoupled from the store through the
//! [`probe::ClusterProbe`] trait so the same code can drive the discrete-event
//! cluster, the real-threaded live cluster, or a mock in tests.

pub mod aggregate;
pub mod collector;
pub mod heavy_hitters;
pub mod probe;

pub use aggregate::LatencyAggregation;
pub use collector::{HotKeyStat, Monitor, MonitorConfig, MonitorSample};
pub use heavy_hitters::{HotKey, HotKeyTracker, SketchEntry, SpaceSavingSketch};
pub use probe::ClusterProbe;

//! The periodic collector: turns raw counters and latency probes into the
//! rate and latency estimates the adaptive-consistency module consumes.
//!
//! Like the paper's implementation, the collector (a) works from *deltas* of
//! cumulative counters between consecutive sweeps, (b) measures the duration
//! of the sweep itself and includes it in the elapsed time used to compute
//! rates, and (c) aggregates per-pair latency probes into one figure.

use crate::aggregate::LatencyAggregation;
use crate::probe::ClusterProbe;
use harmony_model::rates::{EwmaRate, RateEstimate, RateEstimator, SlidingWindowRate};
use harmony_sim::clock::SimTime;
use serde::{Deserialize, Serialize};

/// Which rate estimator the monitor feeds its counter deltas into.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EstimatorKind {
    /// Rates over a sliding window of the given length in seconds.
    SlidingWindow(f64),
    /// Exponentially weighted moving average with the given smoothing factor.
    Ewma(f64),
}

/// Monitor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Time between sweeps, in seconds (the paper's monitoring period).
    pub interval_secs: f64,
    /// Rate estimator fed by the counter deltas.
    pub estimator: EstimatorKind,
    /// How per-pair latency probes are folded into one `Ln` value.
    pub latency_aggregation: LatencyAggregation,
    /// Modelled cost of probing one node, in milliseconds. The paper's
    /// monitor is multithreaded to keep this overhead low; the overhead is
    /// still accounted for in the rate computation.
    pub probe_cost_per_node_ms: f64,
    /// How many monitoring threads the sweep is spread over (the paper's
    /// monitor collects from sets of nodes in parallel).
    pub probe_threads: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            interval_secs: 1.0,
            estimator: EstimatorKind::SlidingWindow(5.0),
            latency_aggregation: LatencyAggregation::Mean,
            probe_cost_per_node_ms: 0.5,
            probe_threads: 8,
        }
    }
}

/// One monitoring sweep's results.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorSample {
    /// When the sweep completed.
    pub at: SimTime,
    /// Seconds elapsed since the previous sweep (including sweep duration).
    pub elapsed_secs: f64,
    /// Read operations completed since the previous sweep.
    pub reads_delta: u64,
    /// Write operations completed since the previous sweep.
    pub writes_delta: u64,
    /// Smoothed read rate (operations/second).
    pub read_rate: f64,
    /// Smoothed write rate (operations/second).
    pub write_rate: f64,
    /// Aggregated network latency (milliseconds).
    pub latency_ms: f64,
    /// Mean mutation-stage backlog per node (milliseconds of expected extra
    /// write-apply delay); zero for backends that cannot measure it.
    pub backlog_ms: f64,
    /// How long the sweep itself took (milliseconds).
    pub sweep_duration_ms: f64,
}

enum Estimator {
    Window(SlidingWindowRate),
    Ewma(EwmaRate),
}

impl Estimator {
    fn observe(&mut self, elapsed: f64, reads: u64, writes: u64) {
        match self {
            Estimator::Window(w) => w.observe(elapsed, reads, writes),
            Estimator::Ewma(e) => e.observe(elapsed, reads, writes),
        }
    }
    fn estimate(&self) -> RateEstimate {
        match self {
            Estimator::Window(w) => w.estimate(),
            Estimator::Ewma(e) => e.estimate(),
        }
    }
}

/// The periodic monitoring module.
pub struct Monitor {
    config: MonitorConfig,
    estimator: Estimator,
    last_sweep_at: Option<SimTime>,
    last_reads: u64,
    last_writes: u64,
    last_latency_ms: f64,
    history: Vec<MonitorSample>,
}

impl Monitor {
    /// Creates a monitor.
    ///
    /// # Panics
    /// Panics if the interval is not strictly positive or the estimator
    /// parameters are invalid.
    pub fn new(config: MonitorConfig) -> Self {
        assert!(
            config.interval_secs > 0.0,
            "monitoring interval must be positive"
        );
        let estimator = match config.estimator {
            EstimatorKind::SlidingWindow(secs) => Estimator::Window(SlidingWindowRate::new(secs)),
            EstimatorKind::Ewma(alpha) => Estimator::Ewma(EwmaRate::new(alpha)),
        };
        Monitor {
            config,
            estimator,
            last_sweep_at: None,
            last_reads: 0,
            last_writes: 0,
            last_latency_ms: 0.0,
            history: Vec::new(),
        }
    }

    /// The monitor configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// The monitoring interval as a [`SimTime`].
    pub fn interval(&self) -> SimTime {
        SimTime::from_secs_f64(self.config.interval_secs)
    }

    /// The modelled duration of one sweep over `nodes` nodes, given the
    /// configured per-node probe cost and probing parallelism.
    pub fn sweep_duration(&self, nodes: usize) -> SimTime {
        let threads = self.config.probe_threads.max(1);
        let per_thread = nodes.div_ceil(threads);
        SimTime::from_millis_f64(self.config.probe_cost_per_node_ms.max(0.0) * per_thread as f64)
    }

    /// Performs one monitoring sweep against the probe at virtual time `now`.
    pub fn sweep<P: ClusterProbe + ?Sized>(&mut self, now: SimTime, probe: &P) -> MonitorSample {
        let reads = probe.total_reads();
        let writes = probe.total_writes();
        let sweep_duration = self.sweep_duration(probe.node_count());

        // Latency probe: aggregate whatever single figure the probe reports.
        // (Richer probes may fold several pairwise measurements themselves.)
        let latency_ms = self
            .config
            .latency_aggregation
            .apply(&[probe.probe_latency_ms()]);
        let backlog_ms = probe.mutation_backlog_ms().max(0.0);

        let elapsed_secs = match self.last_sweep_at {
            Some(prev) => now.saturating_sub(prev).as_secs_f64(),
            None => self.config.interval_secs,
        } + sweep_duration.as_secs_f64();

        let reads_delta = reads.saturating_sub(self.last_reads);
        let writes_delta = writes.saturating_sub(self.last_writes);
        if elapsed_secs > 0.0 {
            self.estimator
                .observe(elapsed_secs, reads_delta, writes_delta);
        }
        self.last_sweep_at = Some(now);
        self.last_reads = reads;
        self.last_writes = writes;
        self.last_latency_ms = latency_ms;

        let est = self.estimator.estimate();
        let sample = MonitorSample {
            at: now,
            elapsed_secs,
            reads_delta,
            writes_delta,
            read_rate: est.reads_per_sec,
            write_rate: est.writes_per_sec,
            latency_ms,
            backlog_ms,
            sweep_duration_ms: sweep_duration.as_millis_f64(),
        };
        self.history.push(sample);
        sample
    }

    /// The latest smoothed access rates.
    pub fn current_rates(&self) -> RateEstimate {
        self.estimator.estimate()
    }

    /// The latest aggregated latency (milliseconds).
    pub fn current_latency_ms(&self) -> f64 {
        self.last_latency_ms
    }

    /// All sweeps performed so far.
    pub fn history(&self) -> &[MonitorSample] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::MockProbe;

    fn monitor() -> Monitor {
        Monitor::new(MonitorConfig::default())
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_panics() {
        Monitor::new(MonitorConfig {
            interval_secs: 0.0,
            ..MonitorConfig::default()
        });
    }

    #[test]
    fn rates_from_counter_deltas() {
        let mut m = monitor();
        let mut probe = MockProbe {
            reads: 0,
            writes: 0,
            latency_ms: 0.4,
            nodes: 8,
            backlog_ms: 0.0,
        };
        m.sweep(SimTime::from_secs(1), &probe);
        probe.reads = 1000;
        probe.writes = 500;
        let s = m.sweep(SimTime::from_secs(2), &probe);
        assert_eq!(s.reads_delta, 1000);
        assert_eq!(s.writes_delta, 500);
        // The sliding window spans both sweeps (the first one had zero
        // deltas), so the smoothed rate is ~1000 ops over ~2 seconds.
        assert!(
            s.read_rate > 450.0 && s.read_rate <= 500.0,
            "rate={}",
            s.read_rate
        );
        assert!(
            s.write_rate > 225.0 && s.write_rate <= 250.0,
            "rate={}",
            s.write_rate
        );
        assert!((m.current_latency_ms() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn counter_reset_does_not_underflow() {
        let mut m = monitor();
        let mut probe = MockProbe {
            reads: 1000,
            writes: 1000,
            latency_ms: 1.0,
            nodes: 4,
            backlog_ms: 0.0,
        };
        m.sweep(SimTime::from_secs(1), &probe);
        // A node restart could reset the counters; delta saturates at zero.
        probe.reads = 10;
        probe.writes = 5;
        let s = m.sweep(SimTime::from_secs(2), &probe);
        assert_eq!(s.reads_delta, 0);
        assert_eq!(s.writes_delta, 0);
    }

    #[test]
    fn sweep_duration_accounts_for_parallel_probing() {
        let m = Monitor::new(MonitorConfig {
            probe_cost_per_node_ms: 1.0,
            probe_threads: 4,
            ..MonitorConfig::default()
        });
        // 20 nodes over 4 threads = 5 sequential probes of 1 ms each.
        assert_eq!(m.sweep_duration(20), SimTime::from_millis(5));
        // More threads than nodes: a single probe's cost.
        assert_eq!(m.sweep_duration(2), SimTime::from_millis(1));
        assert_eq!(m.sweep_duration(0), SimTime::ZERO);
    }

    #[test]
    fn sweep_duration_is_added_to_elapsed_time() {
        let mut m = Monitor::new(MonitorConfig {
            probe_cost_per_node_ms: 100.0, // deliberately huge: 1 node => 0.1 s
            probe_threads: 1,
            estimator: EstimatorKind::Ewma(1.0),
            ..MonitorConfig::default()
        });
        let mut probe = MockProbe {
            reads: 0,
            writes: 0,
            latency_ms: 1.0,
            nodes: 1,
            backlog_ms: 0.0,
        };
        m.sweep(SimTime::from_secs(1), &probe);
        probe.reads = 1100;
        let s = m.sweep(SimTime::from_secs(2), &probe);
        // Elapsed is 1.0 s between sweeps + 0.1 s sweep cost = 1.1 s,
        // so the rate is 1100 / 1.1 = 1000, not 1100.
        assert!((s.read_rate - 1000.0).abs() < 1.0, "rate={}", s.read_rate);
    }

    #[test]
    fn ewma_estimator_can_be_selected() {
        let mut m = Monitor::new(MonitorConfig {
            estimator: EstimatorKind::Ewma(0.5),
            probe_cost_per_node_ms: 0.0,
            ..MonitorConfig::default()
        });
        let mut probe = MockProbe {
            nodes: 1,
            latency_ms: 1.0,
            ..MockProbe::default()
        };
        m.sweep(SimTime::from_secs(1), &probe);
        probe.reads = 100;
        m.sweep(SimTime::from_secs(2), &probe);
        probe.reads = 300;
        m.sweep(SimTime::from_secs(3), &probe);
        // Samples are 0/s (first sweep), 100/s, 200/s; with alpha 0.5 the
        // EWMA is 0.5*200 + 0.25*100 + 0.25*0 = 125/s.
        assert!((m.current_rates().reads_per_sec - 125.0).abs() < 1.0);
    }

    #[test]
    fn history_accumulates() {
        let mut m = monitor();
        let probe = MockProbe {
            nodes: 2,
            latency_ms: 0.2,
            ..MockProbe::default()
        };
        for i in 1..=5 {
            m.sweep(SimTime::from_secs(i), &probe);
        }
        assert_eq!(m.history().len(), 5);
        assert!(m.history().windows(2).all(|w| w[0].at < w[1].at));
    }

    #[test]
    fn interval_conversion() {
        let m = Monitor::new(MonitorConfig {
            interval_secs: 0.5,
            ..MonitorConfig::default()
        });
        assert_eq!(m.interval(), SimTime::from_millis(500));
    }
}

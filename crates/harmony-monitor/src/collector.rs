//! The periodic collector: turns raw counters and latency probes into the
//! rate and latency estimates the adaptive-consistency module consumes.
//!
//! Like the paper's implementation, the collector (a) works from *deltas* of
//! cumulative counters between consecutive sweeps, (b) measures the duration
//! of the sweep itself and includes it in the elapsed time used to compute
//! rates, and (c) aggregates per-pair latency probes into one figure.

use crate::aggregate::LatencyAggregation;
use crate::heavy_hitters::HotKeyTracker;
use crate::probe::ClusterProbe;
use harmony_model::queueing::MG1Queue;
use harmony_model::rates::{EwmaRate, RateEstimate, RateEstimator, SlidingWindowRate};
use harmony_sim::clock::SimTime;
use harmony_store::keys::KeyId;
use serde::{Deserialize, Serialize};

/// Which rate estimator the monitor feeds its counter deltas into.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EstimatorKind {
    /// Rates over a sliding window of the given length in seconds.
    SlidingWindow(f64),
    /// Exponentially weighted moving average with the given smoothing factor.
    Ewma(f64),
}

/// Monitor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Time between sweeps, in seconds (the paper's monitoring period).
    pub interval_secs: f64,
    /// Rate estimator fed by the counter deltas.
    pub estimator: EstimatorKind,
    /// How per-pair latency probes are folded into one `Ln` value.
    pub latency_aggregation: LatencyAggregation,
    /// Modelled cost of probing one node, in milliseconds. The paper's
    /// monitor is multithreaded to keep this overhead low; the overhead is
    /// still accounted for in the rate computation.
    pub probe_cost_per_node_ms: f64,
    /// How many monitoring threads the sweep is spread over (the paper's
    /// monitor collects from sets of nodes in parallel).
    pub probe_threads: usize,
    /// Counter capacity of the heavy-hitter (space-saving) sketch tracking
    /// per-key write arrivals. Bounds the monitor's per-key memory.
    pub hot_key_capacity: usize,
    /// Minimum guaranteed share of all writes for a tracked key to count as
    /// hot (fraction; the `total/capacity` noise floor applies on top).
    pub hot_key_min_share: f64,
    /// Accrual-suspicion level (φ) at or above which a node's telemetry is
    /// discounted from the per-replica aggregates, so a failing replica's
    /// frozen counters do not dilute the cluster estimate. `0.0` disables the
    /// discount entirely: the detector is never consulted and the sweep is
    /// byte-identical to one without the feature.
    pub suspicion_threshold: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            interval_secs: 1.0,
            estimator: EstimatorKind::SlidingWindow(5.0),
            latency_aggregation: LatencyAggregation::Mean,
            probe_cost_per_node_ms: 0.5,
            probe_threads: 8,
            hot_key_capacity: 64,
            hot_key_min_share: 0.02,
            suspicion_threshold: 0.0,
        }
    }
}

/// One monitoring sweep's results.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorSample {
    /// When the sweep completed.
    pub at: SimTime,
    /// Seconds elapsed since the previous sweep (including sweep duration).
    pub elapsed_secs: f64,
    /// Read operations completed since the previous sweep.
    pub reads_delta: u64,
    /// Write operations completed since the previous sweep.
    pub writes_delta: u64,
    /// Smoothed read rate (operations/second).
    pub read_rate: f64,
    /// Smoothed write rate (operations/second).
    pub write_rate: f64,
    /// Aggregated network latency (milliseconds).
    pub latency_ms: f64,
    /// Mean mutation-stage backlog per node (milliseconds of expected extra
    /// write-apply delay); zero for backends that cannot measure it.
    pub backlog_ms: f64,
    /// Standard deviation of the per-node mutation backlog across replicas
    /// (milliseconds) — the queue-wait dispersion that widens the staleness
    /// window; zero for backends reporting only the aggregate backlog.
    pub backlog_spread_ms: f64,
    /// Rate of change of the mean backlog over the recent sweep history
    /// (milliseconds of backlog per second); positive while the queue grows.
    pub backlog_trend_ms_per_s: f64,
    /// Smoothed replica-write arrival rate per node's mutation stage (jobs/s).
    pub write_arrival_rate_per_replica: f64,
    /// Measured mean mutation service time (milliseconds), normalised by the
    /// node's service concurrency so it is directly comparable with the
    /// backlog-per-queued-mutation figure.
    pub write_service_mean_ms: f64,
    /// Squared coefficient of variation of the measured mutation service time
    /// (1.0 when nothing has been measured yet — the exponential assumption).
    pub write_service_scv: f64,
    /// M/G/1 *predicted* mean queue wait (milliseconds): the
    /// Pollaczek–Khinchine wait of this sweep's smoothed arrival/service fit,
    /// saturated to the trend window so it stays finite at ρ ≥ 1. Moves one
    /// monitoring period before the measured backlog does — it reacts to the
    /// arrival rate, not to the queue the arrivals have yet to build.
    pub predicted_wait_ms: f64,
    /// Rate of change of the predicted wait over the recent sweep history
    /// (milliseconds per second); the earliest divergence signal available.
    pub predicted_wait_trend_ms_per_s: f64,
    /// How long the sweep itself took (milliseconds).
    pub sweep_duration_ms: f64,
    /// Nodes whose accrual suspicion met the configured threshold this sweep;
    /// their telemetry was excluded from the per-replica aggregates. Always 0
    /// while the discount is disabled (`suspicion_threshold == 0.0`).
    pub suspected_nodes: usize,
    /// Largest per-node accrual suspicion (φ) observed this sweep; 0.0 while
    /// the discount is disabled or no failure detector is running.
    pub max_suspicion: f64,
}

/// One hot key's monitored state after a sweep: the per-key signals the
/// split controller specialises the staleness model with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HotKeyStat {
    /// The interned key (what the read path's hot-set lookup matches on).
    pub key: KeyId,
    /// The key's human-readable name, resolved once per sweep for reports.
    pub name: String,
    /// Smoothed per-key write arrival rate (writes/second).
    pub write_rate: f64,
    /// Guaranteed share of all observed writes going to this key.
    pub share: f64,
    /// Deepest per-replica pending-mutation backlog for this key (ms).
    pub backlog_ms: f64,
    /// Guaranteed (certain) occurrence count from the sketch.
    pub guaranteed_count: u64,
}

enum Estimator {
    Window(SlidingWindowRate),
    Ewma(EwmaRate),
}

impl Estimator {
    fn observe(&mut self, elapsed: f64, reads: u64, writes: u64) {
        match self {
            Estimator::Window(w) => w.observe(elapsed, reads, writes),
            Estimator::Ewma(e) => e.observe(elapsed, reads, writes),
        }
    }
    fn estimate(&self) -> RateEstimate {
        match self {
            Estimator::Window(w) => w.estimate(),
            Estimator::Ewma(e) => e.estimate(),
        }
    }
}

/// The periodic monitoring module.
pub struct Monitor {
    config: MonitorConfig,
    estimator: Estimator,
    /// Smooths the replica-write (mutation-stage) arrival counts the same way
    /// client rates are smoothed; writes side unused.
    arrival_estimator: Estimator,
    last_sweep_at: Option<SimTime>,
    last_reads: u64,
    last_writes: u64,
    last_write_arrivals: u64,
    last_service_completed: u64,
    last_service_ms_total: f64,
    last_service_ms_sq_total: f64,
    /// Most recent per-sweep service-time estimates, retained across sweeps
    /// that complete no mutations (or hit a counter reset).
    last_service_mean_ms: f64,
    last_service_scv: f64,
    last_latency_ms: f64,
    /// Recent (time, mean backlog) points used for the trend estimate.
    backlog_history: std::collections::VecDeque<(SimTime, f64)>,
    /// Recent (time, predicted wait) points for the predicted-wait trend.
    predicted_history: std::collections::VecDeque<(SimTime, f64)>,
    /// The probe's fault epoch at the previous sweep; any change segments the
    /// trend histories (a membership change shifts the backlog baseline, so a
    /// slope spanning it would be spurious).
    last_fault_epoch: u64,
    /// Heavy-hitter tracking over the probe's write-key sample stream.
    hot_tracker: HotKeyTracker,
    /// Hot-key stats of the most recent sweep (sorted hottest first).
    hot_stats: Vec<HotKeyStat>,
    history: Vec<MonitorSample>,
}

/// Debug-asserting clamp for backlog telemetry crossing the probe boundary:
/// a negative backlog is an upstream sign bug (the store's own scans assert
/// the same invariant at the source), so debug builds fail loudly while
/// release builds clamp and keep serving — the
/// `stale_probability_saturating` convention.
fn non_negative_telemetry(ms: f64) -> f64 {
    debug_assert!(ms >= 0.0, "negative backlog reported by the probe: {ms} ms");
    ms.max(0.0)
}

/// Population mean and standard deviation of a slice; (0, 0) when empty.
fn mean_and_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.max(0.0).sqrt())
}

impl Monitor {
    /// Creates a monitor.
    ///
    /// # Panics
    /// Panics if the interval is not strictly positive or the estimator
    /// parameters are invalid.
    pub fn new(config: MonitorConfig) -> Self {
        assert!(
            config.interval_secs > 0.0,
            "monitoring interval must be positive"
        );
        let build = |kind: EstimatorKind| match kind {
            EstimatorKind::SlidingWindow(secs) => Estimator::Window(SlidingWindowRate::new(secs)),
            EstimatorKind::Ewma(alpha) => Estimator::Ewma(EwmaRate::new(alpha)),
        };
        Monitor {
            estimator: build(config.estimator),
            arrival_estimator: build(config.estimator),
            hot_tracker: HotKeyTracker::new(config.hot_key_capacity, config.hot_key_min_share),
            hot_stats: Vec::new(),
            config,
            last_sweep_at: None,
            last_reads: 0,
            last_writes: 0,
            last_write_arrivals: 0,
            last_service_completed: 0,
            last_service_ms_total: 0.0,
            last_service_ms_sq_total: 0.0,
            last_service_mean_ms: 0.0,
            last_service_scv: 1.0,
            last_latency_ms: 0.0,
            backlog_history: std::collections::VecDeque::new(),
            predicted_history: std::collections::VecDeque::new(),
            last_fault_epoch: 0,
            history: Vec::new(),
        }
    }

    /// How far back the backlog-trend estimate looks: the sliding-window
    /// length when one is configured, and never less than a few sweeps.
    fn trend_window_secs(&self) -> f64 {
        let base = match self.config.estimator {
            EstimatorKind::SlidingWindow(secs) => secs,
            EstimatorKind::Ewma(_) => 0.0,
        };
        base.max(self.config.interval_secs * 5.0)
    }

    /// The monitor configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// The monitoring interval as a [`SimTime`].
    pub fn interval(&self) -> SimTime {
        SimTime::from_secs_f64(self.config.interval_secs)
    }

    /// The modelled duration of one sweep over `nodes` nodes, given the
    /// configured per-node probe cost and probing parallelism.
    pub fn sweep_duration(&self, nodes: usize) -> SimTime {
        let threads = self.config.probe_threads.max(1);
        let per_thread = nodes.div_ceil(threads);
        SimTime::from_millis_f64(self.config.probe_cost_per_node_ms.max(0.0) * per_thread as f64)
    }

    /// Performs one monitoring sweep against the probe at virtual time `now`.
    pub fn sweep<P: ClusterProbe + ?Sized>(&mut self, now: SimTime, probe: &P) -> MonitorSample {
        let reads = probe.total_reads();
        let writes = probe.total_writes();
        let sweep_duration = self.sweep_duration(probe.node_count());

        // Topology change since the previous sweep (crash, heal, join,
        // decommission, partition): the backlog baseline just shifted, so any
        // trend slope spanning the change would be spurious — a join draining
        // load reads as a crash-grade collapse, a decommission as runaway
        // growth. Segment both trend histories at the epoch boundary; the
        // first post-change sweep reports a zero trend and the slope rebuilds
        // from in-epoch points only.
        let fault_epoch = probe.fault_epoch();
        if fault_epoch != self.last_fault_epoch {
            self.last_fault_epoch = fault_epoch;
            self.backlog_history.clear();
            self.predicted_history.clear();
        }

        // Latency probe: aggregate whatever single figure the probe reports.
        // (Richer probes may fold several pairwise measurements themselves.)
        let latency_ms = self
            .config
            .latency_aggregation
            .apply(&[probe.probe_latency_ms()]);

        // Failure-detector discount: nodes whose accrual suspicion meets the
        // configured threshold are treated as non-reporting — their entries
        // are dropped from the per-replica aggregates below and the
        // per-replica normalisation shrinks accordingly. A suspected node's
        // frozen counters would otherwise read as "zero backlog, zero
        // arrivals" and dilute the cluster estimate exactly while the node is
        // failing. The index filter only applies when a per-node vector is
        // full-width (one entry per node, the no-fault steady state where the
        // detector matters); at the default threshold of 0.0 the detector is
        // never consulted and the sweep is byte-identical.
        let suspicions = if self.config.suspicion_threshold > 0.0 {
            probe.node_suspicions(now)
        } else {
            Vec::new()
        };
        let suspected: Vec<bool> = suspicions
            .iter()
            .map(|&phi| phi >= self.config.suspicion_threshold)
            .collect();
        let suspected_nodes = suspected.iter().filter(|s| **s).count();
        let max_suspicion = suspicions.iter().fold(0.0f64, |a, &b| a.max(b));
        let drop_suspected =
            |values_len: usize| suspected_nodes > 0 && values_len == suspected.len();

        // Backlog: prefer the per-node view (mean + cross-replica spread);
        // fall back to the scalar aggregate for backends without it.
        let mut replica_backlogs = probe.replica_backlog_ms();
        if drop_suspected(replica_backlogs.len()) {
            let mut keep = suspected.iter().map(|s| !s);
            replica_backlogs.retain(|_| keep.next().unwrap());
        }
        let (backlog_ms, backlog_spread_ms) = if replica_backlogs.is_empty() {
            (probe.mutation_backlog_ms().max(0.0), 0.0)
        } else {
            mean_and_std(&replica_backlogs)
        };

        // Write-stage telemetry: arrival counts feed a smoothed per-replica
        // arrival rate; per-sweep *deltas* of the accumulated sampled service
        // times give the measured service mean and SCV (normalised per
        // concurrency slot), so a drifting service time is visible within one
        // sweep instead of being averaged away by the run's history. A
        // counter reset (node restart) makes a delta go negative; the sweep
        // then retains the previous estimates and re-baselines.
        let mut telemetry = probe.write_stage_telemetry();
        if drop_suspected(telemetry.len()) {
            let mut keep = suspected.iter().map(|s| !s);
            telemetry.retain(|_| keep.next().unwrap());
        }
        let write_arrivals: u64 = telemetry.iter().map(|t| t.arrivals).sum();
        let completed: u64 = telemetry.iter().map(|t| t.completed).sum();
        let service_total_ms: f64 = telemetry.iter().map(|t| t.service_ms_total).sum();
        let service_sq_total: f64 = telemetry.iter().map(|t| t.service_ms_sq_total).sum();
        let concurrency = probe.write_stage_concurrency().max(1) as f64;
        let completed_delta = completed.saturating_sub(self.last_service_completed);
        let service_ms_delta = service_total_ms - self.last_service_ms_total;
        let service_sq_delta = service_sq_total - self.last_service_ms_sq_total;
        let reset = completed < self.last_service_completed
            || service_ms_delta < 0.0
            || service_sq_delta < 0.0;
        if !reset && completed_delta > 0 && service_ms_delta > 0.0 {
            let raw_mean = service_ms_delta / completed_delta as f64;
            let raw_var =
                (service_sq_delta / completed_delta as f64 - raw_mean * raw_mean).max(0.0);
            self.last_service_mean_ms = raw_mean / concurrency;
            self.last_service_scv = raw_var / (raw_mean * raw_mean);
        }
        self.last_service_completed = completed;
        self.last_service_ms_total = service_total_ms;
        self.last_service_ms_sq_total = service_sq_total;
        let (write_service_mean_ms, write_service_scv) =
            (self.last_service_mean_ms, self.last_service_scv);

        let elapsed_secs = match self.last_sweep_at {
            Some(prev) => now.saturating_sub(prev).as_secs_f64(),
            None => self.config.interval_secs,
        } + sweep_duration.as_secs_f64();

        let reads_delta = reads.saturating_sub(self.last_reads);
        let writes_delta = writes.saturating_sub(self.last_writes);
        let arrivals_delta = write_arrivals.saturating_sub(self.last_write_arrivals);
        if elapsed_secs > 0.0 {
            self.estimator
                .observe(elapsed_secs, reads_delta, writes_delta);
            self.arrival_estimator
                .observe(elapsed_secs, arrivals_delta, 0);
        }

        // Heavy hitters: feed this sweep's write-key samples to the sketch,
        // then snapshot the hot set with its per-key backlogs. Backends
        // without per-key signals produce an empty stream and the snapshot
        // stays empty — the per-key layer degrades to the global model. A
        // sharded backend publishes per-shard cumulative sketches instead of
        // a sample stream; they fold into one cluster sketch here, at the
        // same point of the sweep, so everything downstream (hot set,
        // per-key backlogs, split decisions) is shard-count agnostic.
        match probe.write_key_sketches() {
            Some(shard_sketches) => {
                let mut merged =
                    crate::heavy_hitters::SpaceSavingSketch::new(self.config.hot_key_capacity);
                for sketch in &shard_sketches {
                    merged.merge(sketch);
                }
                self.hot_tracker.observe_merged(merged, elapsed_secs);
            }
            None => {
                let key_samples = probe.drain_write_key_samples();
                self.hot_tracker.observe_sweep(&key_samples, elapsed_secs);
            }
        }
        let hot = self.hot_tracker.hot_keys();
        self.hot_stats = if hot.is_empty() {
            Vec::new()
        } else {
            let keys: Vec<KeyId> = hot.iter().map(|h| h.key).collect();
            let backlogs = probe.per_key_backlog_ms(&keys);
            hot.into_iter()
                .enumerate()
                .map(|(i, h)| HotKeyStat {
                    key: h.key,
                    name: probe.key_name(h.key),
                    write_rate: h.rate,
                    share: h.share,
                    backlog_ms: non_negative_telemetry(backlogs.get(i).copied().unwrap_or(0.0)),
                    guaranteed_count: h.guaranteed_count,
                })
                .collect()
        };

        // Backlog trend: slope between the oldest retained point and now.
        let backlog_trend_ms_per_s = match self.backlog_history.front() {
            Some(&(t0, b0)) => {
                let dt = now.saturating_sub(t0).as_secs_f64();
                if dt > 0.0 {
                    (backlog_ms - b0) / dt
                } else {
                    0.0
                }
            }
            None => 0.0,
        };
        self.backlog_history.push_back((now, backlog_ms));
        let horizon = SimTime::from_secs_f64(self.trend_window_secs());
        while let Some(&(t0, _)) = self.backlog_history.front() {
            if now.saturating_sub(t0) > horizon && self.backlog_history.len() > 2 {
                self.backlog_history.pop_front();
            } else {
                break;
            }
        }

        // Per-replica normalisation over the nodes that actually produced
        // telemetry this sweep: a crashed replica contributes no arrivals,
        // and dividing by the full node count would read its silence as a
        // lower per-replica rate — dragging the utilisation estimate down
        // exactly when replicas are lost.
        let nodes = probe
            .live_node_count()
            .saturating_sub(suspected_nodes)
            .max(1) as f64;
        let write_arrival_rate_per_replica =
            self.arrival_estimator.estimate().reads_per_sec / nodes;

        // Predicted queue wait: the Pollaczek–Khinchine wait of this sweep's
        // smoothed arrival/service fit, through the *saturating* accessor so
        // a sweep at ρ ≥ 1 reports the trend-window worst case instead of
        // infinity (an infinite point would poison the trend slope below with
        // `inf - inf = NaN`). The prediction moves with the arrival rate, one
        // monitoring period before the backlog those arrivals will build.
        let predicted_wait_ms = MG1Queue::new(
            write_arrival_rate_per_replica,
            write_service_mean_ms / 1e3,
            write_service_scv,
        )
        .mean_wait_secs_saturating(self.trend_window_secs())
            * 1e3;
        let predicted_wait_trend_ms_per_s = match self.predicted_history.front() {
            Some(&(t0, p0)) => {
                let dt = now.saturating_sub(t0).as_secs_f64();
                if dt > 0.0 {
                    (predicted_wait_ms - p0) / dt
                } else {
                    0.0
                }
            }
            None => 0.0,
        };
        self.predicted_history.push_back((now, predicted_wait_ms));
        while let Some(&(t0, _)) = self.predicted_history.front() {
            if now.saturating_sub(t0) > horizon && self.predicted_history.len() > 2 {
                self.predicted_history.pop_front();
            } else {
                break;
            }
        }

        self.last_sweep_at = Some(now);
        self.last_reads = reads;
        self.last_writes = writes;
        self.last_write_arrivals = write_arrivals;
        self.last_latency_ms = latency_ms;

        let est = self.estimator.estimate();
        let sample = MonitorSample {
            at: now,
            elapsed_secs,
            reads_delta,
            writes_delta,
            read_rate: est.reads_per_sec,
            write_rate: est.writes_per_sec,
            latency_ms,
            backlog_ms,
            backlog_spread_ms,
            backlog_trend_ms_per_s,
            write_arrival_rate_per_replica,
            write_service_mean_ms,
            write_service_scv,
            predicted_wait_ms,
            predicted_wait_trend_ms_per_s,
            sweep_duration_ms: sweep_duration.as_millis_f64(),
            suspected_nodes,
            max_suspicion,
        };
        self.history.push(sample);
        sample
    }

    /// The latest smoothed access rates.
    pub fn current_rates(&self) -> RateEstimate {
        self.estimator.estimate()
    }

    /// The latest aggregated latency (milliseconds).
    pub fn current_latency_ms(&self) -> f64 {
        self.last_latency_ms
    }

    /// All sweeps performed so far.
    pub fn history(&self) -> &[MonitorSample] {
        &self.history
    }

    /// The hot-key stats of the most recent sweep, hottest first. Empty while
    /// the sketch warms up, under unskewed load, or on backends that cannot
    /// observe per-key writes.
    pub fn hot_key_stats(&self) -> &[HotKeyStat] {
        &self.hot_stats
    }

    /// Read-only access to the heavy-hitter tracker (tests, tools).
    pub fn hot_tracker(&self) -> &HotKeyTracker {
        &self.hot_tracker
    }

    /// Upper bound on the write share of any key outside the current hot set
    /// (see [`HotKeyTracker::cold_share_bound`]).
    pub fn cold_share_bound(&self) -> f64 {
        self.hot_tracker.cold_share_bound()
    }

    /// Exports the monitor's latest sweep (gauges) and its full sweep history
    /// (histograms over the per-sweep signals) into a metrics registry.
    /// Collect-on-scrape: nothing here runs during the simulation.
    pub fn export_metrics(&self, registry: &harmony_obs::MetricsRegistry) {
        let Some(last) = self.history.last() else {
            return;
        };
        for (name, value) in [
            ("harmony_monitor_read_rate", last.read_rate),
            ("harmony_monitor_write_rate", last.write_rate),
            ("harmony_monitor_latency_ms", last.latency_ms),
            ("harmony_monitor_backlog_ms", last.backlog_ms),
            ("harmony_monitor_backlog_spread_ms", last.backlog_spread_ms),
            (
                "harmony_monitor_backlog_trend_ms_per_s",
                last.backlog_trend_ms_per_s,
            ),
            ("harmony_monitor_predicted_wait_ms", last.predicted_wait_ms),
            ("harmony_monitor_phi_max", last.max_suspicion),
            (
                "harmony_monitor_suspected_nodes",
                last.suspected_nodes as f64,
            ),
        ] {
            registry.gauge(name).set(value);
        }
        registry
            .counter("harmony_monitor_sweeps_total")
            .add(self.history.len() as u64);
        // Distribution of the signals over the whole run, one sample per
        // sweep: histograms answer "how bad did the backlog get and how
        // often" where the gauges only show the final state.
        let backlog = registry.histogram("harmony_monitor_backlog_us");
        let predicted = registry.histogram("harmony_monitor_predicted_wait_us");
        for s in &self.history {
            backlog.record_us(s.backlog_ms.max(0.0) * 1e3);
            predicted.record_us(s.predicted_wait_ms.max(0.0) * 1e3);
        }
        for stat in &self.hot_stats {
            registry
                .gauge(&harmony_obs::series_name(
                    "harmony_monitor_hot_key_backlog_ms",
                    &[("key", &stat.name)],
                ))
                .set(stat.backlog_ms);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::MockProbe;

    fn monitor() -> Monitor {
        Monitor::new(MonitorConfig::default())
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_panics() {
        Monitor::new(MonitorConfig {
            interval_secs: 0.0,
            ..MonitorConfig::default()
        });
    }

    #[test]
    fn rates_from_counter_deltas() {
        let mut m = monitor();
        let mut probe = MockProbe {
            reads: 0,
            writes: 0,
            latency_ms: 0.4,
            nodes: 8,
            backlog_ms: 0.0,
            ..MockProbe::default()
        };
        m.sweep(SimTime::from_secs(1), &probe);
        probe.reads = 1000;
        probe.writes = 500;
        let s = m.sweep(SimTime::from_secs(2), &probe);
        assert_eq!(s.reads_delta, 1000);
        assert_eq!(s.writes_delta, 500);
        // The sliding window spans both sweeps (the first one had zero
        // deltas), so the smoothed rate is ~1000 ops over ~2 seconds.
        assert!(
            s.read_rate > 450.0 && s.read_rate <= 500.0,
            "rate={}",
            s.read_rate
        );
        assert!(
            s.write_rate > 225.0 && s.write_rate <= 250.0,
            "rate={}",
            s.write_rate
        );
        assert!((m.current_latency_ms() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn counter_reset_does_not_underflow() {
        let mut m = monitor();
        let mut probe = MockProbe {
            reads: 1000,
            writes: 1000,
            latency_ms: 1.0,
            nodes: 4,
            backlog_ms: 0.0,
            ..MockProbe::default()
        };
        m.sweep(SimTime::from_secs(1), &probe);
        // A node restart could reset the counters; delta saturates at zero.
        probe.reads = 10;
        probe.writes = 5;
        let s = m.sweep(SimTime::from_secs(2), &probe);
        assert_eq!(s.reads_delta, 0);
        assert_eq!(s.writes_delta, 0);
    }

    #[test]
    fn sweep_duration_accounts_for_parallel_probing() {
        let m = Monitor::new(MonitorConfig {
            probe_cost_per_node_ms: 1.0,
            probe_threads: 4,
            ..MonitorConfig::default()
        });
        // 20 nodes over 4 threads = 5 sequential probes of 1 ms each.
        assert_eq!(m.sweep_duration(20), SimTime::from_millis(5));
        // More threads than nodes: a single probe's cost.
        assert_eq!(m.sweep_duration(2), SimTime::from_millis(1));
        assert_eq!(m.sweep_duration(0), SimTime::ZERO);
    }

    #[test]
    fn sweep_duration_is_added_to_elapsed_time() {
        let mut m = Monitor::new(MonitorConfig {
            probe_cost_per_node_ms: 100.0, // deliberately huge: 1 node => 0.1 s
            probe_threads: 1,
            estimator: EstimatorKind::Ewma(1.0),
            ..MonitorConfig::default()
        });
        let mut probe = MockProbe {
            reads: 0,
            writes: 0,
            latency_ms: 1.0,
            nodes: 1,
            backlog_ms: 0.0,
            ..MockProbe::default()
        };
        m.sweep(SimTime::from_secs(1), &probe);
        probe.reads = 1100;
        let s = m.sweep(SimTime::from_secs(2), &probe);
        // Elapsed is 1.0 s between sweeps + 0.1 s sweep cost = 1.1 s,
        // so the rate is 1100 / 1.1 = 1000, not 1100.
        assert!((s.read_rate - 1000.0).abs() < 1.0, "rate={}", s.read_rate);
    }

    #[test]
    fn ewma_estimator_can_be_selected() {
        let mut m = Monitor::new(MonitorConfig {
            estimator: EstimatorKind::Ewma(0.5),
            probe_cost_per_node_ms: 0.0,
            ..MonitorConfig::default()
        });
        let mut probe = MockProbe {
            nodes: 1,
            latency_ms: 1.0,
            ..MockProbe::default()
        };
        m.sweep(SimTime::from_secs(1), &probe);
        probe.reads = 100;
        m.sweep(SimTime::from_secs(2), &probe);
        probe.reads = 300;
        m.sweep(SimTime::from_secs(3), &probe);
        // Samples are 0/s (first sweep), 100/s, 200/s; with alpha 0.5 the
        // EWMA is 0.5*200 + 0.25*100 + 0.25*0 = 125/s.
        assert!((m.current_rates().reads_per_sec - 125.0).abs() < 1.0);
    }

    #[test]
    fn per_replica_backlogs_produce_mean_and_spread() {
        // Run the same sweep twice: once with only the scalar aggregate and
        // once with the per-replica view layered on top. The per-replica view
        // must win whenever it is present — the sample reports the replica
        // mean, not whatever the scalar fallback claims.
        let scalar_only = MockProbe {
            nodes: 4,
            latency_ms: 0.3,
            backlog_ms: 99.0,
            ..MockProbe::default()
        };
        let s = monitor().sweep(SimTime::from_secs(1), &scalar_only);
        assert_eq!(
            s.backlog_ms, 99.0,
            "without a per-replica view the scalar is used"
        );

        let with_replica_view = MockProbe {
            replica_backlogs: vec![1.0, 3.0, 5.0, 7.0],
            ..scalar_only
        };
        let s = monitor().sweep(SimTime::from_secs(1), &with_replica_view);
        assert!(
            (s.backlog_ms - 4.0).abs() < 1e-12,
            "the per-replica mean must win over the scalar aggregate, got {}",
            s.backlog_ms
        );
        assert_ne!(s.backlog_ms, with_replica_view.backlog_ms);
        // Population std of [1,3,5,7] = sqrt(5).
        assert!((s.backlog_spread_ms - 5.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn scalar_backlog_fallback_has_zero_spread() {
        let mut m = monitor();
        let probe = MockProbe {
            nodes: 4,
            latency_ms: 0.3,
            backlog_ms: 2.5,
            ..MockProbe::default()
        };
        let s = m.sweep(SimTime::from_secs(1), &probe);
        assert_eq!(s.backlog_ms, 2.5);
        assert_eq!(s.backlog_spread_ms, 0.0);
    }

    #[test]
    fn backlog_trend_tracks_growth_and_plateau() {
        let mut m = monitor();
        let mut probe = MockProbe {
            nodes: 2,
            latency_ms: 0.3,
            ..MockProbe::default()
        };
        // Growing backlog: 0 → 2 → 4 ms over two 1-second steps.
        for (i, b) in [0.0, 2.0, 4.0].iter().enumerate() {
            probe.backlog_ms = *b;
            m.sweep(SimTime::from_secs(i as u64 + 1), &probe);
        }
        let s = m.history().last().copied().unwrap();
        assert!(
            (s.backlog_trend_ms_per_s - 2.0).abs() < 1e-9,
            "trend={}",
            s.backlog_trend_ms_per_s
        );
        // Plateau: the trend decays back towards zero.
        for i in 4..=12u64 {
            probe.backlog_ms = 4.0;
            m.sweep(SimTime::from_secs(i), &probe);
        }
        let s = m.history().last().copied().unwrap();
        assert!(
            s.backlog_trend_ms_per_s.abs() < 0.2,
            "trend={}",
            s.backlog_trend_ms_per_s
        );
    }

    #[test]
    fn write_stage_telemetry_yields_arrival_rate_and_service_stats() {
        use harmony_store::node::WriteStageTelemetry;
        let mut m = Monitor::new(MonitorConfig {
            estimator: EstimatorKind::Ewma(1.0),
            probe_cost_per_node_ms: 0.0,
            ..MonitorConfig::default()
        });
        let mut probe = MockProbe {
            nodes: 2,
            latency_ms: 0.3,
            write_concurrency: 2,
            ..MockProbe::default()
        };
        m.sweep(SimTime::from_secs(1), &probe);
        // 400 mutations arrive across 2 nodes in 1 s; mean sampled service
        // 0.5 ms with some dispersion.
        probe.write_telemetry = vec![
            WriteStageTelemetry {
                arrivals: 200,
                completed: 200,
                service_ms_total: 100.0,
                service_ms_sq_total: 100.0,
                queued: 0,
                busy: 0,
            },
            WriteStageTelemetry {
                arrivals: 200,
                completed: 200,
                service_ms_total: 100.0,
                service_ms_sq_total: 50.0,
                queued: 0,
                busy: 0,
            },
        ];
        let s = m.sweep(SimTime::from_secs(2), &probe);
        // 400 arrivals / 1 s / 2 nodes = 200 jobs/s per replica.
        assert!(
            (s.write_arrival_rate_per_replica - 200.0).abs() < 1.0,
            "rate={}",
            s.write_arrival_rate_per_replica
        );
        // Raw mean 0.5 ms normalised by concurrency 2 → 0.25 ms.
        assert!(
            (s.write_service_mean_ms - 0.25).abs() < 1e-9,
            "mean={}",
            s.write_service_mean_ms
        );
        // SCV = var / mean² on the raw scale: (0.375/0.25 - 1) = 0.5.
        assert!(
            (s.write_service_scv - 0.5).abs() < 1e-9,
            "scv={}",
            s.write_service_scv
        );
    }

    #[test]
    fn service_stats_track_drift_and_survive_counter_resets() {
        use harmony_store::node::WriteStageTelemetry;
        let mut m = monitor();
        let mut probe = MockProbe {
            nodes: 1,
            latency_ms: 0.3,
            write_concurrency: 1,
            ..MockProbe::default()
        };
        let telemetry = |completed: u64, per_job_ms: f64| {
            vec![WriteStageTelemetry {
                arrivals: completed,
                completed,
                service_ms_total: completed as f64 * per_job_ms,
                service_ms_sq_total: completed as f64 * per_job_ms * per_job_ms,
                queued: 0,
                busy: 0,
            }]
        };
        // 100 jobs at 0.5 ms each.
        probe.write_telemetry = telemetry(100, 0.5);
        let s = m.sweep(SimTime::from_secs(1), &probe);
        assert!((s.write_service_mean_ms - 0.5).abs() < 1e-9);
        // The next 100 jobs take 2 ms each (noisy neighbour): the per-sweep
        // delta sees the new mean immediately, not the run-lifetime average.
        probe.write_telemetry = vec![WriteStageTelemetry {
            arrivals: 200,
            completed: 200,
            service_ms_total: 100.0 * 0.5 + 100.0 * 2.0,
            service_ms_sq_total: 100.0 * 0.25 + 100.0 * 4.0,
            queued: 0,
            busy: 0,
        }];
        let s = m.sweep(SimTime::from_secs(2), &probe);
        assert!(
            (s.write_service_mean_ms - 2.0).abs() < 1e-9,
            "mean={}",
            s.write_service_mean_ms
        );
        // Node restart: counters reset below the baseline. The sweep keeps
        // the previous estimates instead of mixing epochs.
        probe.write_telemetry = telemetry(10, 0.5);
        let s = m.sweep(SimTime::from_secs(3), &probe);
        assert!((s.write_service_mean_ms - 2.0).abs() < 1e-9);
        // After re-baselining, fresh deltas are measured again.
        probe.write_telemetry = telemetry(60, 0.5);
        let s = m.sweep(SimTime::from_secs(4), &probe);
        assert!(
            (s.write_service_mean_ms - 0.5).abs() < 1e-9,
            "mean={}",
            s.write_service_mean_ms
        );
    }

    #[test]
    fn silent_node_does_not_drag_the_cluster_estimate_down() {
        // Regression: a replica with zero samples in a tick (crashed, cut
        // off, or simply not probed) must read as "no telemetry", not as a
        // 0.0 rate or a 0.0 backlog averaged into the cluster estimate.
        use harmony_store::node::WriteStageTelemetry;
        let mut m = Monitor::new(MonitorConfig {
            estimator: EstimatorKind::Ewma(1.0),
            probe_cost_per_node_ms: 0.0,
            ..MonitorConfig::default()
        });
        let telemetry = |completed: u64| WriteStageTelemetry {
            arrivals: completed,
            completed,
            service_ms_total: completed as f64 * 0.5,
            service_ms_sq_total: completed as f64 * 0.25,
            queued: 0,
            busy: 0,
        };
        let mut probe = MockProbe {
            nodes: 4,
            live_nodes: Some(4),
            latency_ms: 0.3,
            write_concurrency: 1,
            write_telemetry: vec![telemetry(0); 4],
            replica_backlogs: vec![8.0, 8.0, 8.0, 8.0],
            ..MockProbe::default()
        };
        m.sweep(SimTime::from_secs(1), &probe);

        // One node dies: its counters freeze, its backlog entry disappears,
        // and only three nodes produce telemetry. 300 arrivals over 3 live
        // nodes is 100 jobs/s per replica — dividing by the full node count
        // would report 75 and understate the write-stage utilisation by 25%
        // exactly when a replica was lost.
        probe.live_nodes = Some(3);
        probe.write_telemetry = vec![telemetry(100), telemetry(100), telemetry(100), telemetry(0)];
        probe.replica_backlogs = vec![8.0, 8.0, 8.0];
        let s = m.sweep(SimTime::from_secs(2), &probe);
        assert!(
            (s.write_arrival_rate_per_replica - 100.0).abs() < 1.0,
            "per-replica rate must be normalised over live nodes, got {}",
            s.write_arrival_rate_per_replica
        );
        // The dead node's missing backlog entry is skipped, not read as 0:
        // the mean stays at the live replicas' 8 ms and the dispersion stays
        // zero (a phantom 0 would report mean 6 and a wide spread).
        assert!((s.backlog_ms - 8.0).abs() < 1e-12, "mean={}", s.backlog_ms);
        assert_eq!(s.backlog_spread_ms, 0.0);
        // The frozen counters produce no service-time delta and the measured
        // mean survives instead of collapsing; no NaN anywhere.
        assert!((s.write_service_mean_ms - 0.5).abs() < 1e-9);
        assert!(s.write_service_scv.is_finite());
        assert!(s.read_rate.is_finite() && s.write_rate.is_finite());
        assert!(s.backlog_trend_ms_per_s.is_finite());
    }

    #[test]
    fn sharded_sweep_normalises_by_the_post_change_live_view() {
        // Sharded extension of the silent-node regression: the probe feeds
        // the monitor per-shard sketches (the merge path, not the sample
        // drain) and a node joins *between two shard merges* — so by the
        // time the monitor sweeps, live_node_count already reports the
        // post-join membership while the older shard's telemetry still has
        // the pre-join width. Per-replica normalisation must follow the
        // fresh live view, and the hot set must come out of the merged
        // sketches.
        use crate::heavy_hitters::SpaceSavingSketch;
        use harmony_store::node::WriteStageTelemetry;
        let telemetry = |completed: u64| WriteStageTelemetry {
            arrivals: completed,
            completed,
            service_ms_total: completed as f64 * 0.5,
            service_ms_sq_total: completed as f64 * 0.25,
            queued: 0,
            busy: 0,
        };
        let mut m = Monitor::new(MonitorConfig {
            estimator: EstimatorKind::Ewma(1.0),
            probe_cost_per_node_ms: 0.0,
            hot_key_capacity: 8,
            hot_key_min_share: 0.05,
            ..MonitorConfig::default()
        });
        let mut probe = MockProbe {
            nodes: 4,
            live_nodes: Some(4),
            latency_ms: 0.3,
            write_concurrency: 1,
            write_telemetry: vec![telemetry(0); 4],
            ..MockProbe::default()
        };
        let hot = probe.intern("user0");
        let cold = probe.intern("user17");
        let sketch_pair = |hot_n: u64, cold_n: u64| {
            let mut a = SpaceSavingSketch::new(8);
            let mut b = SpaceSavingSketch::new(8);
            for _ in 0..hot_n {
                a.observe(hot);
            }
            for _ in 0..cold_n {
                b.observe(cold);
            }
            vec![a, b]
        };
        // Several steady sweeps with growing *cumulative* sketches — exactly
        // what the sharded runtime publishes — warm the tracker up.
        for sweep in 1..=5u64 {
            probe.sketches = Some(sketch_pair(90 * sweep, 10 * sweep));
            m.sweep(SimTime::from_secs(sweep), &probe);
        }

        // The join lands mid-sweep: epoch bumps, the live view is already
        // the post-join one, and this sweep's telemetry spans the new width.
        probe.nodes = 5;
        probe.live_nodes = Some(5);
        probe.epoch = 1;
        probe.write_telemetry = vec![
            telemetry(100),
            telemetry(100),
            telemetry(100),
            telemetry(100),
            telemetry(100),
        ];
        probe.sketches = Some(sketch_pair(90 * 6, 10 * 6));
        let s = m.sweep(SimTime::from_secs(6), &probe);
        // 500 arrivals over 5 live nodes = 100 jobs/s per replica; dividing
        // by the stale 4-node view would claim 125 and overstate pressure
        // exactly when capacity was just added.
        assert!(
            (s.write_arrival_rate_per_replica - 100.0).abs() < 1.0,
            "per-replica rate must use the post-join live view, got {}",
            s.write_arrival_rate_per_replica
        );
        // The merged sketches reached the hot tracker: the skewed key
        // surfaces with its cross-shard share, the cold one does not.
        let stats = m.hot_key_stats();
        assert!(!stats.is_empty(), "hot key must surface via sketch merge");
        assert_eq!(stats[0].key, hot);
        assert!(stats[0].share > 0.5, "share = {}", stats[0].share);
        assert!(s.read_rate.is_finite() && s.write_rate.is_finite());
    }

    #[test]
    fn missing_write_telemetry_defaults_to_exponential_assumption() {
        let mut m = monitor();
        let probe = MockProbe {
            nodes: 3,
            latency_ms: 0.2,
            ..MockProbe::default()
        };
        let s = m.sweep(SimTime::from_secs(1), &probe);
        assert_eq!(s.write_arrival_rate_per_replica, 0.0);
        assert_eq!(s.write_service_mean_ms, 0.0);
        assert_eq!(s.write_service_scv, 1.0);
    }

    #[test]
    fn hot_keys_surface_with_rates_and_backlogs() {
        let mut m = Monitor::new(MonitorConfig {
            estimator: EstimatorKind::Ewma(1.0),
            probe_cost_per_node_ms: 0.0,
            hot_key_capacity: 8,
            hot_key_min_share: 0.05,
            ..MonitorConfig::default()
        });
        let mut probe = MockProbe {
            nodes: 4,
            latency_ms: 0.3,
            ..MockProbe::default()
        };
        probe.key_backlogs.insert("user0".to_string(), 12.5);
        // Skewed stream: 60% of writes hit user0, the rest a cold tail.
        for sweep in 1..=6u64 {
            let mut batch = Vec::new();
            for i in 0..100u64 {
                if i % 5 < 3 {
                    batch.push("user0".to_string());
                } else {
                    batch.push(format!("user{}", 1 + (sweep * 100 + i) % 40));
                }
            }
            probe.set_write_keys(&batch);
            m.sweep(SimTime::from_secs(sweep), &probe);
        }
        let stats = m.hot_key_stats();
        assert!(!stats.is_empty(), "hot key should surface");
        assert_eq!(stats[0].key, probe.intern("user0"));
        assert_eq!(stats[0].name, "user0");
        assert!(stats[0].share > 0.5, "share = {}", stats[0].share);
        assert!(
            (stats[0].write_rate - 60.0).abs() < 10.0,
            "rate = {}",
            stats[0].write_rate
        );
        assert_eq!(stats[0].backlog_ms, 12.5);
    }

    #[test]
    fn unskewed_stream_produces_no_hot_keys() {
        let mut m = Monitor::new(MonitorConfig {
            probe_cost_per_node_ms: 0.0,
            hot_key_capacity: 8,
            ..MonitorConfig::default()
        });
        let probe = MockProbe {
            nodes: 4,
            latency_ms: 0.3,
            ..MockProbe::default()
        };
        for sweep in 1..=8u64 {
            let batch: Vec<String> = (0..100u64)
                .map(|i| format!("user{}", (sweep * 100 + i * 13) % 400))
                .collect();
            probe.set_write_keys(&batch);
            m.sweep(SimTime::from_secs(sweep), &probe);
        }
        assert!(m.hot_key_stats().is_empty());
    }

    #[test]
    fn predicted_wait_matches_the_mg1_fit_and_saturates() {
        use harmony_store::node::WriteStageTelemetry;
        let mut m = Monitor::new(MonitorConfig {
            estimator: EstimatorKind::Ewma(1.0),
            probe_cost_per_node_ms: 0.0,
            ..MonitorConfig::default()
        });
        let telemetry = |arrivals: u64, per_job_ms: f64| {
            vec![WriteStageTelemetry {
                arrivals,
                completed: arrivals,
                service_ms_total: arrivals as f64 * per_job_ms,
                service_ms_sq_total: arrivals as f64 * per_job_ms * per_job_ms,
                queued: 0,
                busy: 0,
            }]
        };
        let mut probe = MockProbe {
            nodes: 1,
            latency_ms: 0.3,
            write_concurrency: 1,
            write_telemetry: telemetry(0, 1.0),
            ..MockProbe::default()
        };
        let s = m.sweep(SimTime::from_secs(1), &probe);
        assert_eq!(s.predicted_wait_ms, 0.0);
        // 500 arrivals/s at a deterministic 1 ms service: ρ = 0.5, and the
        // P-K wait for c² = 0 is ρ/2 · E[S]/(1-ρ) = 0.5 ms.
        probe.write_telemetry = telemetry(500, 1.0);
        let s = m.sweep(SimTime::from_secs(2), &probe);
        let expected_ms = MG1Queue::new(
            s.write_arrival_rate_per_replica,
            s.write_service_mean_ms / 1e3,
            s.write_service_scv,
        )
        .mean_wait_secs()
            * 1e3;
        assert!(
            (s.predicted_wait_ms - expected_ms).abs() < 1e-9,
            "predicted={} expected={}",
            s.predicted_wait_ms,
            expected_ms
        );
        assert!(s.predicted_wait_ms > 0.0);
        // Past saturation the raw wait is infinite; the published prediction
        // saturates at the trend window and every derived figure stays finite.
        probe.write_telemetry = telemetry(2000, 1.0);
        let s = m.sweep(SimTime::from_secs(3), &probe);
        assert!(s.predicted_wait_ms.is_finite());
        assert!((s.predicted_wait_ms - m.trend_window_secs() * 1e3).abs() < 1e-9);
        assert!(s.predicted_wait_trend_ms_per_s.is_finite());
    }

    #[test]
    fn predicted_wait_trend_tracks_the_arrival_ramp() {
        use harmony_store::node::WriteStageTelemetry;
        let mut m = Monitor::new(MonitorConfig {
            estimator: EstimatorKind::Ewma(1.0),
            probe_cost_per_node_ms: 0.0,
            ..MonitorConfig::default()
        });
        let telemetry = |cumulative: u64| {
            vec![WriteStageTelemetry {
                arrivals: cumulative,
                completed: cumulative,
                service_ms_total: cumulative as f64,
                service_ms_sq_total: cumulative as f64,
                queued: 0,
                busy: 0,
            }]
        };
        let mut probe = MockProbe {
            nodes: 1,
            latency_ms: 0.3,
            write_concurrency: 1,
            ..MockProbe::default()
        };
        // Ramp the arrival rate sweep over sweep: the predicted wait grows
        // although the measured backlog never moves — this is exactly the
        // lead the proactive controller escalates on.
        let mut cumulative = 0u64;
        let mut last_trend = 0.0;
        for (i, rate) in [100u64, 300, 600, 850].iter().enumerate() {
            cumulative += rate;
            probe.write_telemetry = telemetry(cumulative);
            let s = m.sweep(SimTime::from_secs(i as u64 + 1), &probe);
            assert_eq!(s.backlog_trend_ms_per_s, 0.0);
            last_trend = s.predicted_wait_trend_ms_per_s;
        }
        assert!(last_trend > 0.0, "trend={last_trend}");
    }

    #[test]
    fn topology_change_segments_the_trend_histories() {
        let mut m = monitor();
        let mut probe = MockProbe {
            nodes: 2,
            latency_ms: 0.3,
            ..MockProbe::default()
        };
        // Growing backlog inside one epoch: the slope is real.
        for (i, b) in [0.0, 2.0, 4.0].iter().enumerate() {
            probe.backlog_ms = *b;
            m.sweep(SimTime::from_secs(i as u64 + 1), &probe);
        }
        assert!(m.history().last().unwrap().backlog_trend_ms_per_s > 1.0);
        // A node joins mid-window and takes over load: the baseline shifts
        // (here: sharply down). Without segmentation the slope spanning the
        // join would read as a crash-grade collapse — and the mirror case, a
        // decommission shifting the baseline up, as runaway growth feeding
        // the divergence detector.
        probe.epoch = 1;
        probe.nodes = 3;
        probe.backlog_ms = 0.5;
        let s = m.sweep(SimTime::from_secs(4), &probe);
        assert_eq!(
            s.backlog_trend_ms_per_s, 0.0,
            "the first post-change sweep must not span the rebuild"
        );
        assert_eq!(s.predicted_wait_trend_ms_per_s, 0.0);
        // Within the new epoch the trend rebuilds from in-epoch points only.
        probe.backlog_ms = 1.5;
        let s = m.sweep(SimTime::from_secs(5), &probe);
        assert!(
            (s.backlog_trend_ms_per_s - 1.0).abs() < 1e-9,
            "trend={}",
            s.backlog_trend_ms_per_s
        );
        // A stable epoch does not segment (the counter only moves on faults).
        probe.backlog_ms = 2.5;
        let s = m.sweep(SimTime::from_secs(6), &probe);
        assert!(s.backlog_trend_ms_per_s > 0.9);
    }

    #[test]
    fn suspicion_discount_disabled_is_byte_identical() {
        // With the default threshold of 0.0 the detector is never consulted:
        // a probe scripting wild suspicions produces exactly the sample a
        // detector-less probe does, sweep after sweep.
        use harmony_store::node::WriteStageTelemetry;
        let telemetry = |completed: u64| WriteStageTelemetry {
            arrivals: completed,
            completed,
            service_ms_total: completed as f64 * 0.5,
            service_ms_sq_total: completed as f64 * 0.25,
            queued: 0,
            busy: 0,
        };
        let mut plain = Monitor::new(MonitorConfig {
            estimator: EstimatorKind::Ewma(1.0),
            probe_cost_per_node_ms: 0.0,
            ..MonitorConfig::default()
        });
        let mut with_detector = Monitor::new(MonitorConfig {
            estimator: EstimatorKind::Ewma(1.0),
            probe_cost_per_node_ms: 0.0,
            ..MonitorConfig::default()
        });
        let probe = MockProbe {
            nodes: 3,
            latency_ms: 0.3,
            write_concurrency: 1,
            write_telemetry: vec![telemetry(100); 3],
            replica_backlogs: vec![2.0, 4.0, 6.0],
            ..MockProbe::default()
        };
        let suspicious = MockProbe {
            suspicions: vec![0.0, 99.0, 3.0],
            ..probe.clone()
        };
        for i in 1..=4u64 {
            let a = plain.sweep(SimTime::from_secs(i), &probe);
            let b = with_detector.sweep(SimTime::from_secs(i), &suspicious);
            assert_eq!(a, b, "disabled discount must be the identity");
            assert_eq!(b.suspected_nodes, 0);
            assert_eq!(b.max_suspicion, 0.0);
        }
    }

    #[test]
    fn suspected_node_is_discounted_from_the_aggregates() {
        // One node's detector suspicion crosses the threshold: its frozen
        // telemetry (zero arrivals, zero backlog) is dropped from the
        // per-replica aggregates instead of diluting them, and the
        // per-replica normalisation shrinks to the trusted nodes.
        use harmony_store::node::WriteStageTelemetry;
        let telemetry = |completed: u64| WriteStageTelemetry {
            arrivals: completed,
            completed,
            service_ms_total: completed as f64 * 0.5,
            service_ms_sq_total: completed as f64 * 0.25,
            queued: 0,
            busy: 0,
        };
        let mut m = Monitor::new(MonitorConfig {
            estimator: EstimatorKind::Ewma(1.0),
            probe_cost_per_node_ms: 0.0,
            suspicion_threshold: 8.0,
            ..MonitorConfig::default()
        });
        let mut probe = MockProbe {
            nodes: 4,
            live_nodes: Some(4),
            latency_ms: 0.3,
            write_concurrency: 1,
            write_telemetry: vec![telemetry(0); 4],
            replica_backlogs: vec![8.0, 8.0, 8.0, 8.0],
            suspicions: vec![0.1, 0.2, 0.1, 0.3],
            ..MockProbe::default()
        };
        let s = m.sweep(SimTime::from_secs(1), &probe);
        assert_eq!(s.suspected_nodes, 0, "below threshold nothing is dropped");

        // The fourth node goes silent: the fault layer still counts it live
        // (no crash was observed), but φ blows past the threshold. Its dead
        // entries must not read as "a fast, empty replica".
        probe.suspicions = vec![0.1, 0.2, 0.1, 12.5];
        probe.write_telemetry = vec![telemetry(100), telemetry(100), telemetry(100), telemetry(0)];
        probe.replica_backlogs = vec![8.0, 8.0, 8.0, 0.0];
        let s = m.sweep(SimTime::from_secs(2), &probe);
        assert_eq!(s.suspected_nodes, 1);
        assert_eq!(s.max_suspicion, 12.5);
        // 300 arrivals over 3 trusted nodes = 100 jobs/s per replica; the
        // undiscounted figure would be 75 — understating pressure exactly
        // while a replica is failing.
        assert!(
            (s.write_arrival_rate_per_replica - 100.0).abs() < 1.0,
            "rate must be normalised over trusted nodes, got {}",
            s.write_arrival_rate_per_replica
        );
        // The suspect's phantom 0 ms backlog is excluded: mean 8, spread 0
        // (with it, mean 6 and a wide spread).
        assert!((s.backlog_ms - 8.0).abs() < 1e-12, "mean={}", s.backlog_ms);
        assert_eq!(s.backlog_spread_ms, 0.0);
    }

    #[test]
    fn mismatched_suspicion_vector_is_reported_but_not_index_filtered() {
        // A backend may report fewer backlog entries than nodes (e.g. only
        // serving replicas). Index-filtering a non-full-width vector would
        // drop the wrong node, so the discount only reports the suspicion
        // summary and shrinks the normalisation count.
        let mut m = Monitor::new(MonitorConfig {
            probe_cost_per_node_ms: 0.0,
            suspicion_threshold: 8.0,
            ..MonitorConfig::default()
        });
        let probe = MockProbe {
            nodes: 4,
            latency_ms: 0.3,
            replica_backlogs: vec![5.0, 5.0, 5.0],
            suspicions: vec![0.0, 0.0, 0.0, 20.0],
            ..MockProbe::default()
        };
        let s = m.sweep(SimTime::from_secs(1), &probe);
        assert_eq!(s.suspected_nodes, 1);
        assert_eq!(s.max_suspicion, 20.0);
        assert!((s.backlog_ms - 5.0).abs() < 1e-12);
        assert_eq!(s.backlog_spread_ms, 0.0);
    }

    #[test]
    fn non_negative_telemetry_passes_valid_values_through() {
        assert_eq!(non_negative_telemetry(0.0), 0.0);
        assert_eq!(non_negative_telemetry(7.5), 7.5);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "negative backlog reported by the probe")]
    fn non_negative_telemetry_panics_on_sign_bugs_in_debug() {
        non_negative_telemetry(-0.25);
    }

    #[test]
    fn history_accumulates() {
        let mut m = monitor();
        let probe = MockProbe {
            nodes: 2,
            latency_ms: 0.2,
            ..MockProbe::default()
        };
        for i in 1..=5 {
            m.sweep(SimTime::from_secs(i), &probe);
        }
        assert_eq!(m.history().len(), 5);
        assert!(m.history().windows(2).all(|w| w[0].at < w[1].at));
    }

    #[test]
    fn interval_conversion() {
        let m = Monitor::new(MonitorConfig {
            interval_secs: 0.5,
            ..MonitorConfig::default()
        });
        assert_eq!(m.interval(), SimTime::from_millis(500));
    }
}

//! Property tests for the space-saving sketch: the classic guarantees hold
//! for arbitrary streams and capacities.
//!
//! * **No under-estimation:** `count(k)` is at least the true frequency of
//!   `k` in the stream.
//! * **Bounded over-estimation:** `count(k) - true(k)` never exceeds the
//!   minimum counter, which itself never exceeds `total / capacity`.
//! * **Bounded memory:** the sketch never tracks more than `capacity` keys.
//! * **Heavy hitters are never lost:** any key whose true frequency exceeds
//!   `total / capacity` is tracked.
//!
//! Sampling is deterministic per property (the mini-proptest shim derives
//! its seed from the property name), so a failure reproduces exactly.

use harmony_monitor::heavy_hitters::SpaceSavingSketch;
use harmony_store::keys::KeyId;
use proptest::prelude::*;
use std::collections::HashMap;

/// Builds the sketch and the exact key histogram for one stream. Raw draws
/// are skewed so streams contain genuine heavy hitters next to a long tail:
/// half the alphabet collapses onto 4 hot keys (ids 0-3), the rest spreads
/// over a cold tail (ids 10+).
fn run_stream(capacity: usize, stream: &[u64]) -> (SpaceSavingSketch, HashMap<KeyId, u64>) {
    let mut sketch = SpaceSavingSketch::new(capacity);
    let mut exact: HashMap<KeyId, u64> = HashMap::new();
    for &raw in stream {
        let key = if raw % 2 == 0 {
            KeyId((raw % 4) as u32)
        } else {
            KeyId(10 + raw as u32)
        };
        sketch.observe(key);
        *exact.entry(key).or_insert(0) += 1;
    }
    (sketch, exact)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn estimates_over_approximate_by_at_most_the_min_counter_bound(
        capacity in 1usize..24,
        stream in prop::collection::vec(0u64..200, 1..1500),
    ) {
        let (sketch, exact) = run_stream(capacity, &stream);
        let total = stream.len() as u64;
        prop_assert_eq!(sketch.total(), total);
        let min_count = sketch.min_count();
        if sketch.len() == capacity {
            // At capacity, the minimum counter is bounded by total/capacity:
            // the counters sum to the stream length, so the smallest of
            // `capacity` counters cannot exceed the mean.
            prop_assert!(
                min_count <= total / capacity as u64,
                "min_count {} > total/capacity {}",
                min_count,
                total / capacity as u64
            );
        } else {
            // Below capacity nothing has been evicted: every count is exact.
            prop_assert!(sketch.entries().iter().all(|e| e.error == 0));
        }
        for entry in sketch.entries() {
            let true_count = exact.get(&entry.key).copied().unwrap_or(0);
            // Never under-estimates...
            prop_assert!(
                entry.count >= true_count,
                "key {} estimated {} < true {}",
                entry.key,
                entry.count,
                true_count
            );
            // ...and over-estimates by at most the inherited error, which is
            // bounded by the minimum counter.
            prop_assert!(
                entry.count - true_count <= entry.error,
                "key {} over-estimate {} exceeds its error {}",
                entry.key,
                entry.count - true_count,
                entry.error
            );
            prop_assert!(
                entry.error <= min_count,
                "key {} error {} > min counter {}",
                entry.key,
                entry.error,
                min_count
            );
            // The guaranteed count is a certain lower bound.
            prop_assert!(entry.guaranteed() <= true_count);
        }
    }

    #[test]
    fn capacity_is_never_exceeded(
        capacity in 1usize..16,
        stream in prop::collection::vec(0u64..500, 1..800),
    ) {
        let (sketch, _) = run_stream(capacity, &stream);
        prop_assert!(sketch.len() <= capacity);
        prop_assert_eq!(sketch.capacity(), capacity);
    }

    #[test]
    fn keys_above_the_frequency_floor_are_always_tracked(
        capacity in 2usize..24,
        stream in prop::collection::vec(0u64..100, 10..1500),
    ) {
        let (sketch, exact) = run_stream(capacity, &stream);
        let total = stream.len() as u64;
        for (key, &true_count) in &exact {
            if true_count > total / capacity as u64 {
                prop_assert!(
                    sketch.estimate(*key).is_some(),
                    "key {} with true frequency {}/{} (> 1/{}) was lost",
                    key,
                    true_count,
                    total,
                    capacity
                );
            }
        }
    }

    #[test]
    fn untracked_keys_are_bounded_by_the_min_counter(
        capacity in 1usize..12,
        stream in prop::collection::vec(0u64..300, 1..1000),
    ) {
        let (sketch, exact) = run_stream(capacity, &stream);
        for (key, &true_count) in &exact {
            if sketch.estimate(*key).is_none() {
                prop_assert!(
                    true_count <= sketch.min_count(),
                    "untracked key {} has true count {} > min counter {}",
                    key,
                    true_count,
                    sketch.min_count()
                );
            }
        }
    }

    // ---- merge: the per-shard sketches the sharded runtime folds into one
    // ---- cluster view must over-approximate exactly like a single global
    // ---- sketch over the concatenated stream would.

    #[test]
    fn merged_shard_sketches_keep_the_space_saving_guarantees(
        capacity in 2usize..16,
        left in prop::collection::vec(0u64..200, 1..800),
        right in prop::collection::vec(0u64..200, 1..800),
    ) {
        let (mut merged, exact_left) = run_stream(capacity, &left);
        let (other, exact_right) = run_stream(capacity, &right);
        merged.merge(&other);
        let total = (left.len() + right.len()) as u64;
        // Totals add exactly.
        prop_assert_eq!(merged.total(), total);
        // Memory bound survives the merge.
        prop_assert!(merged.len() <= capacity);
        let mut exact = exact_left;
        for (k, v) in exact_right {
            *exact.entry(k).or_insert(0) += v;
        }
        let min_count = merged.min_count();
        for entry in merged.entries() {
            let true_count = exact.get(&entry.key).copied().unwrap_or(0);
            // Never under-estimates the combined stream...
            prop_assert!(
                entry.count >= true_count,
                "merged key {} estimated {} < true {}",
                entry.key,
                entry.count,
                true_count
            );
            // ...the inherited error still bounds the over-estimate...
            prop_assert!(
                entry.count - true_count <= entry.error,
                "merged key {} over-estimate {} exceeds error {}",
                entry.key,
                entry.count - true_count,
                entry.error
            );
            // ...and the guaranteed count stays a certain lower bound.
            prop_assert!(entry.guaranteed() <= true_count);
        }
        // Keys the merge dropped (or never tracked) are still bounded by
        // the merged minimum counter — the same eviction invariant a global
        // sketch maintains.
        for (key, &true_count) in &exact {
            if merged.estimate(*key).is_none() {
                prop_assert!(
                    true_count <= min_count,
                    "untracked merged key {} has true count {} > min counter {}",
                    key,
                    true_count,
                    min_count
                );
            }
        }
    }

    #[test]
    fn merge_is_deterministic_and_identity_on_empty(
        capacity in 2usize..12,
        stream in prop::collection::vec(0u64..150, 1..600),
    ) {
        let (mut a, _) = run_stream(capacity, &stream);
        let (mut b, _) = run_stream(capacity, &stream);
        let (other, _) = run_stream(capacity, &stream[..stream.len() / 2 + 1]);
        a.merge(&other);
        b.merge(&other);
        // Same inputs, same merged state, entry for entry.
        prop_assert_eq!(a.entries(), b.entries());
        prop_assert_eq!(a.total(), b.total());
        // Merging an empty sketch changes nothing.
        let before: Vec<_> = a.entries().to_vec();
        a.merge(&SpaceSavingSketch::new(capacity));
        prop_assert_eq!(a.entries(), &before[..]);
    }
}

//! The paper's motivating example (§III): two applications with the *same*
//! access pattern but very different costs for stale reads.
//!
//! * A **web shop** during a holiday rush: a stale read can show the wrong
//!   stock level or price — the application tolerates very few stale reads.
//! * A **social network** during a busy evening: a stale read just shows a
//!   slightly older timeline — a much higher stale-read rate is acceptable.
//!
//! A purely access-pattern-driven controller would give both the same
//! consistency level. Harmony differentiates them through `app_stale_rate`,
//! and this example shows the consequence: the web shop pays a little more
//! latency for far fewer stale reads, the social network keeps near-eventual
//! performance.
//!
//! Run with: `cargo run --release --example webshop_vs_social`

use harmony::prelude::*;

struct Application {
    name: &'static str,
    tolerated_stale_rate: f64,
}

fn main() {
    // `--quick` (used by the smoke tests) shrinks the run so it finishes in
    // well under a second even in debug builds.
    let quick = std::env::args().any(|a| a == "--quick");
    let (records, ops) = if quick { (400, 2_000) } else { (4_000, 40_000) };

    let profile = harmony::profiles::grid5000();
    let store = StoreConfig {
        replication_factor: profile.replication_factor,
        ..StoreConfig::default()
    };

    // Identical access pattern for both applications: heavy read-update
    // bursts from 40 concurrent clients (a busy period in both stories).
    let mut workload = WorkloadSpec::workload_a(records);
    workload.name = "busy-period".into();
    workload.field_count = 4;
    workload.field_size = 64;
    let spec = ExperimentSpec::single_phase(workload, 40, ops);

    let applications = [
        Application {
            name: "web-shop (tolerates 5% stale reads)",
            tolerated_stale_rate: 0.05,
        },
        Application {
            name: "social network (tolerates 60% stale reads)",
            tolerated_stale_rate: 0.60,
        },
    ];

    println!("Same access pattern, different consistency requirements\n");
    for app in applications {
        let result = run_experiment(
            &profile,
            store.clone(),
            ControllerConfig::default(),
            Box::new(HarmonyPolicy::new(
                profile.replication_factor,
                app.tolerated_stale_rate,
            )),
            spec.clone(),
        );
        let avg_replicas: f64 = {
            let total: u64 = result.read_level_histogram.values().sum();
            let weighted: u64 = result
                .read_level_histogram
                .iter()
                .map(|(replicas, count)| *replicas as u64 * count)
                .sum();
            if total == 0 {
                0.0
            } else {
                weighted as f64 / total as f64
            }
        };
        println!("{}", app.name);
        println!("  policy                 : {}", result.policy);
        println!(
            "  throughput             : {:>10.0} ops/s",
            result.throughput()
        );
        println!(
            "  read latency p99       : {:>10.3} ms",
            result.read_p99_ms()
        );
        println!(
            "  stale reads            : {:>10}  ({:.2}% of reads)",
            result.stats.stale_reads,
            result.stats.stale_fraction() * 100.0
        );
        println!("  avg replicas per read  : {:>10.2}", avg_replicas);
        println!(
            "  read levels used       : {:?}",
            result.read_level_histogram
        );
        println!();
    }
    println!(
        "The web shop's low tolerance forces Harmony to involve more replicas whenever the\n\
         estimated stale-read rate rises, while the social network keeps reading from a single\n\
         replica almost all the time — same workload, different consistency, chosen automatically."
    );
}

//! An interactive-style "calculator" for the Harmony estimation model.
//!
//! Prints, for a grid of access patterns and network latencies, the estimated
//! probability of a stale read under eventual consistency (paper Eq. 6) and
//! the number of replicas Harmony would involve in reads (Eq. 8) for a range
//! of tolerated stale-read rates. Useful for capacity planning: given an
//! expected workload and network, how often will the controller escalate the
//! consistency level, and how far?
//!
//! Run with: `cargo run --release --example consistency_explorer`
//! Optional arguments: `<replication_factor> <avg_write_size_bytes>`

use harmony::model::staleness::{PropagationModel, StaleReadModel};

fn main() {
    let mut args = std::env::args().skip(1);
    let replication_factor: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);
    let avg_write_size: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1024.0);

    let model = StaleReadModel::new(replication_factor);
    let propagation = PropagationModel::default();
    let tolerances = [0.05, 0.20, 0.40, 0.60, 0.80];

    println!(
        "Harmony consistency explorer — RF = {replication_factor}, quorum = {}, avg write = {avg_write_size} B",
        model.quorum()
    );
    println!(
        "Columns: estimated Pr(stale read) at consistency ONE, then the replica count Xn Harmony\n\
         would use for each tolerated stale-read rate.\n"
    );

    for &latency_ms in &[0.2f64, 1.0, 5.0, 20.0] {
        let tp = propagation.propagation_time_secs(latency_ms, avg_write_size);
        println!(
            "--- network latency {latency_ms:.1} ms (Tp = {:.3} ms) ---",
            tp * 1e3
        );
        println!(
            "{:>10} {:>10} {:>10} | {}",
            "reads/s",
            "writes/s",
            "Pr(stale)",
            tolerances
                .iter()
                .map(|t| format!("ASR {:>3.0}%", t * 100.0))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for &(reads, writes) in &[
            (100.0, 10.0),
            (1_000.0, 50.0),
            (1_000.0, 1_000.0),
            (5_000.0, 2_500.0),
            (10_000.0, 10_000.0),
            (20_000.0, 1_000.0),
        ] {
            let p = model.stale_probability(reads, writes, tp);
            let levels: Vec<String> = tolerances
                .iter()
                .map(|asr| format!("{:>8}", model.required_replicas(*asr, reads, writes, tp)))
                .collect();
            println!(
                "{:>10.0} {:>10.0} {:>10.4} | {}",
                reads,
                writes,
                p,
                levels.join("  ")
            );
        }
        println!();
    }

    println!(
        "Reading the table: when the estimate is below the tolerance the controller stays at one\n\
         replica (eventual consistency); as the estimate rises past it, Xn climbs towards the\n\
         replication factor, which is exactly strong consistency."
    );
}

//! Harmony on a *real-threaded* replicated store.
//!
//! The discrete-event simulator regenerates the paper's figures; this example
//! shows the same control loop working against genuinely concurrent code:
//! every storage node is an OS thread, replica propagation happens over
//! crossbeam channels with real (sleep-injected) delays, and client worker
//! threads hammer the store while the Harmony controller adapts the read
//! consistency level in wall-clock time.
//!
//! Run with: `cargo run --release --example live_cluster`

use harmony::adaptive::config::ControllerConfig;
use harmony::adaptive::policy::HarmonyPolicy;
use harmony::live::{LiveCluster, LiveConfig, LiveHarmony};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let cluster = LiveCluster::start(LiveConfig {
        nodes: 6,
        replication_factor: 3,
        propagation_delay: Duration::from_micros(400),
        jitter: 0.4,
        seed: 2012,
        ..LiveConfig::default()
    });
    let harmony = Arc::new(LiveHarmony::new(
        cluster,
        ControllerConfig::default(),
        Box::new(HarmonyPolicy::new(3, 0.20)),
    ));
    harmony.adapt();

    println!("Live cluster: 6 node threads, RF = 3, Harmony-20% adapting every 200 ms\n");

    // Client workers: a 50/50 read-update mix over a small hot keyspace.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut workers = Vec::new();
    for worker in 0..4u64 {
        let h = Arc::clone(&harmony);
        let stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let key = format!("item{}", (worker * 7 + i) % 50);
                if i.is_multiple_of(2) {
                    h.write(&key, format!("value-{worker}-{i}").into_bytes());
                } else {
                    let _ = h.read(&key);
                }
                i += 1;
            }
            i
        }));
    }

    // Control loop: adapt every 200 ms for two seconds and print the state.
    // `--quick` (used by the smoke tests) shortens this to 3 x 50 ms.
    let quick = std::env::args().any(|a| a == "--quick");
    let (rounds, tick) = if quick {
        (3, Duration::from_millis(50))
    } else {
        (10, Duration::from_millis(200))
    };
    let started = Instant::now();
    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "t(ms)", "reads", "writes", "stale", "estimate", "read level"
    );
    for _ in 0..rounds {
        std::thread::sleep(tick);
        let level = harmony.adapt();
        let counters = harmony.cluster().counters();
        println!(
            "{:>8} {:>10} {:>10} {:>12} {:>12.4} {:>12}",
            started.elapsed().as_millis(),
            counters.reads.load(Ordering::Relaxed),
            counters.writes.load(Ordering::Relaxed),
            counters.stale_reads.load(Ordering::Relaxed),
            harmony.last_estimate().unwrap_or(0.0),
            level.to_string(),
        );
    }

    stop.store(true, Ordering::Relaxed);
    let total_ops: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    let elapsed = started.elapsed().as_secs_f64();
    let counters = harmony.cluster().counters();
    let reads = counters.reads.load(Ordering::Relaxed);
    let stale = counters.stale_reads.load(Ordering::Relaxed);
    println!(
        "\n{} client operations in {:.2} s ({:.0} ops/s); {} of {} reads were stale ({:.2}%)",
        total_ops,
        elapsed,
        total_ops as f64 / elapsed,
        stale,
        reads,
        if reads > 0 {
            stale as f64 / reads as f64 * 100.0
        } else {
            0.0
        },
    );
    match Arc::try_unwrap(harmony) {
        Ok(h) => h.shutdown(),
        Err(_) => eprintln!("warning: live cluster still referenced; letting Drop clean it up"),
    }
}

//! Network latency dominates the stale-read estimate (paper Figure 4b).
//!
//! This example sweeps the inter-replica network latency from LAN-class
//! (0.2 ms) to congested-cloud-class (50 ms) while keeping the workload
//! fixed, and prints (a) the model's stale-read estimate and (b) the
//! consistency level Harmony would pick for three tolerance settings.
//! It then simulates an EC2-style latency spike mid-run and shows the
//! controller raising and relaxing the level as the spike passes.
//!
//! Run with: `cargo run --release --example latency_spike`

use harmony::adaptive::config::ControllerConfig;
use harmony::adaptive::controller::AdaptiveController;
use harmony::adaptive::policy::HarmonyPolicy;
use harmony::model::staleness::{PropagationModel, StaleReadModel};
use harmony::monitor::probe::MockProbe;
use harmony::prelude::*;

fn main() {
    sweep_latency();
    println!();
    spike_timeline();
}

/// Part 1: the estimate as a function of latency, for a fixed access pattern.
fn sweep_latency() {
    let model = StaleReadModel::new(5);
    let propagation = PropagationModel::default();
    let read_rate = 2_000.0; // ops/s
    let write_rate = 1_500.0; // ops/s
    let tolerances = [0.20, 0.40, 0.60];

    println!("Stale-read estimate vs network latency (workload-A-like rates, RF = 5)");
    println!(
        "{:>12} {:>12} {:>18} {:>18} {:>18}",
        "latency(ms)", "Pr(stale)", "Xn @ ASR=20%", "Xn @ ASR=40%", "Xn @ ASR=60%"
    );
    for latency_ms in [0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0] {
        let tp = propagation.propagation_time_secs(latency_ms, 1024.0);
        let estimate = model.stale_probability(read_rate, write_rate, tp);
        let levels: Vec<usize> = tolerances
            .iter()
            .map(|asr| model.required_replicas(*asr, read_rate, write_rate, tp))
            .collect();
        println!(
            "{:>12.1} {:>12.4} {:>18} {:>18} {:>18}",
            latency_ms, estimate, levels[0], levels[1], levels[2]
        );
    }
    println!(
        "\nAs in Figure 4(b): above a few milliseconds of latency the estimate saturates near its\n\
         ceiling regardless of the exact access rates — latency dominates."
    );
}

/// Part 2: a controller watching a cluster whose latency spikes and recovers.
fn spike_timeline() {
    let mut controller = AdaptiveController::new(
        ControllerConfig::default(),
        5,
        Box::new(HarmonyPolicy::new(5, 0.40)),
    );
    println!("Harmony-40% reacting to an EC2-style latency spike");
    println!(
        "{:>6} {:>14} {:>12} {:>16}",
        "t(s)", "latency(ms)", "Pr(stale)", "read level"
    );
    let mut probe = MockProbe {
        reads: 0,
        writes: 0,
        latency_ms: 1.2,
        nodes: 20,
        ..MockProbe::default()
    };
    for second in 1..=20u64 {
        // A steady workload-A-like load...
        probe.reads += 2_000;
        probe.writes += 1_800;
        // ...with a latency spike between t = 8 s and t = 12 s.
        probe.latency_ms = if (8..12).contains(&second) { 25.0 } else { 1.2 };
        let level = controller.tick(SimTime::from_secs(second), &probe);
        let record = controller.decisions().last().unwrap();
        println!(
            "{:>6} {:>14.1} {:>12.4} {:>16}",
            second,
            record.latency_ms,
            record.estimate.unwrap_or(0.0),
            level.to_string()
        );
    }
    println!(
        "\nDuring the spike the estimated stale-read rate exceeds the 40% tolerance and Harmony\n\
         raises the read level; once the network recovers the level relaxes back to ONE."
    );
}

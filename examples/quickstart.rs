//! Quickstart: run the paper's main scenario at laptop scale.
//!
//! YCSB workload A (heavy read-update) on a Grid'5000-like cluster with
//! replication factor 5, comparing four read-consistency policies:
//! static eventual consistency (ONE), static strong consistency (ALL), and
//! Harmony with 20% / 40% tolerated stale reads.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Pass `--obs` to re-run the Harmony-40% arm with the observability layer
//! on: the example then dumps the Prometheus metrics snapshot, the flight
//! recorder's slowest per-op traces, and the controller's decision audit.

use harmony::prelude::*;

fn main() {
    // `--quick` (used by the smoke tests) shrinks the run so it finishes in
    // well under a second even in debug builds.
    let quick = std::env::args().any(|a| a == "--quick");
    let obs = std::env::args().any(|a| a == "--obs");
    let (records, ops) = if quick { (500, 2_000) } else { (5_000, 30_000) };

    let profile = harmony::profiles::grid5000();
    let store = StoreConfig {
        replication_factor: profile.replication_factor,
        ..StoreConfig::default()
    };

    // A scaled-down workload A on 20 client threads (5 000 records and
    // 30 000 ops by default; 500 and 2 000 under --quick).
    let mut workload = WorkloadSpec::workload_a(records);
    workload.field_count = 4;
    workload.field_size = 64;
    let spec = ExperimentSpec::single_phase(workload, 20, ops);

    let policies: Vec<Box<dyn ConsistencyPolicy>> = vec![
        Box::new(StaticPolicy::Eventual),
        Box::new(HarmonyPolicy::new(profile.replication_factor, 0.40)),
        Box::new(HarmonyPolicy::new(profile.replication_factor, 0.20)),
        Box::new(StaticPolicy::Strong),
    ];

    println!(
        "Harmony quickstart — workload A on the {} profile",
        profile.name
    );
    println!(
        "{:<14} {:>12} {:>14} {:>14} {:>12} {:>12}",
        "policy", "ops/s", "read p99 (ms)", "read mean (ms)", "stale reads", "stale %"
    );
    for policy in policies {
        let result = run_experiment(
            &profile,
            store.clone(),
            ControllerConfig::default(),
            policy,
            spec.clone(),
        );
        println!(
            "{:<14} {:>12.0} {:>14.3} {:>14.3} {:>12} {:>11.2}%",
            result.policy,
            result.throughput(),
            result.read_p99_ms(),
            result.stats.read_latency.mean_ms(),
            result.stats.stale_reads,
            result.stats.stale_fraction() * 100.0,
        );
    }
    println!();
    println!(
        "Expected shape (paper §V): eventual is fastest but stalest, strong is slowest with zero\n\
         staleness, and Harmony sits next to eventual in latency/throughput while cutting stale\n\
         reads sharply — the stricter the tolerance, the fewer stale reads."
    );

    if obs {
        dump_observability(&profile, &store, &spec);
    }
}

/// `--obs`: one more Harmony-40% run with tracing, metrics and the decision
/// audit switched on, followed by the three exports.
fn dump_observability(profile: &ClusterProfile, store: &StoreConfig, spec: &ExperimentSpec) {
    let (result, report) = run_experiment_with_obs(
        profile,
        store.clone(),
        ControllerConfig::default(),
        Box::new(HarmonyPolicy::new(profile.replication_factor, 0.40)),
        spec.clone(),
        FaultSchedule::empty(),
        ObsConfig::enabled(),
    );
    println!();
    println!(
        "=== observability (harmony-40, {} ops) ===",
        result.stats.operations
    );
    println!();
    println!("--- Prometheus metrics snapshot ---");
    print!("{}", report.prometheus_text());
    println!();
    println!(
        "--- flight recorder: {} retained trace(s), slowest first ---",
        report.recorder.len()
    );
    for trace in report.recorder.traces().take(3) {
        println!("{}", trace.render());
    }
    println!("--- decision audit: {} record(s) ---", report.audit.len());
    for record in report.audit.iter().take(5) {
        println!("  {}", record.explain());
    }
    if report.audit.len() > 5 {
        println!("  ... ({} more)", report.audit.len() - 5);
    }
    println!();
    println!(
        "Full JSON exports are available via ObsReport::traces_json() / audit_json();\n\
         the same switches work on run_sharded_experiment_with_obs and the bench binaries."
    );
}

//! End-to-end integration tests asserting the paper's qualitative claims on a
//! scaled-down configuration: the relative ordering of the policies in terms
//! of staleness, latency and throughput (§V.E-F), using the full stack —
//! simulated cluster, monitoring module, adaptive controller and the
//! YCSB-style workload runner.

use harmony::prelude::*;

fn profile() -> ClusterProfile {
    harmony::profiles::grid5000_with_nodes(10)
}

fn store_config() -> StoreConfig {
    StoreConfig {
        replication_factor: 5,
        node_concurrency: 4,
        read_service_ms: 0.25,
        write_service_ms: 0.4,
        client_latency_ms: 0.15,
        ..StoreConfig::default()
    }
}

fn controller_config() -> ControllerConfig {
    // The exact configuration the figure binaries run, so these tests guard
    // what `fig5_*`/`fig6_*`/`headline` actually measure (including the
    // calibrated queueing model).
    harmony_bench::experiments::figure_controller_config()
}

fn run(policy: Box<dyn ConsistencyPolicy>, threads: usize, ops: u64) -> ExperimentResult {
    let mut workload = WorkloadSpec::workload_a(2_000);
    workload.field_count = 4;
    workload.field_size = 32;
    let spec = ExperimentSpec {
        workload,
        phases: vec![Phase::new(threads, ops)],
        seed: 20120920,
        dual_read_measurement: false,
        hot_key_prefix: 0,
        max_virtual_secs: 600.0,
    };
    run_experiment(
        &profile(),
        store_config(),
        controller_config(),
        policy,
        spec,
    )
}

/// §V.F: every Harmony setting returns fewer stale reads than static eventual
/// consistency, stricter settings fewer than looser ones, and strong
/// consistency none at all.
#[test]
fn staleness_ordering_matches_figure6() {
    let threads = 60;
    let ops = 25_000;
    let eventual = run(Box::new(StaticPolicy::Eventual), threads, ops);
    let harmony40 = run(Box::new(HarmonyPolicy::new(5, 0.4)), threads, ops);
    let harmony20 = run(Box::new(HarmonyPolicy::new(5, 0.2)), threads, ops);
    let strong = run(Box::new(StaticPolicy::Strong), threads, ops);

    assert!(
        eventual.stats.stale_reads > 0,
        "eventual consistency under heavy read-update load must observe stale reads"
    );
    assert!(harmony40.stats.stale_reads <= eventual.stats.stale_reads);
    assert!(harmony20.stats.stale_reads <= harmony40.stats.stale_reads);
    assert_eq!(strong.stats.stale_reads, 0);
}

/// §I headline: Harmony with a strict tolerance cuts the stale reads sharply
/// (the paper reports ~80%) while adding only modest latency over eventual
/// consistency.
#[test]
fn harmony_cuts_staleness_with_modest_latency_cost() {
    let threads = 60;
    let ops = 25_000;
    let eventual = run(Box::new(StaticPolicy::Eventual), threads, ops);
    let harmony20 = run(Box::new(HarmonyPolicy::new(5, 0.2)), threads, ops);

    let reduction =
        1.0 - harmony20.stats.stale_reads as f64 / eventual.stats.stale_reads.max(1) as f64;
    assert!(
        reduction > 0.5,
        "expected a large stale-read reduction, got {:.0}% ({} vs {})",
        reduction * 100.0,
        harmony20.stats.stale_reads,
        eventual.stats.stale_reads
    );
    // "Minimal latency" in the paper means the mean read latency stays within
    // a small factor of the eventual-consistency latency (far below strong's).
    let strong = run(Box::new(StaticPolicy::Strong), threads, ops);
    let harmony_lat = harmony20.stats.read_latency.mean_ms();
    let eventual_lat = eventual.stats.read_latency.mean_ms();
    let strong_lat = strong.stats.read_latency.mean_ms();
    assert!(harmony_lat >= eventual_lat);
    assert!(
        harmony_lat < strong_lat,
        "harmony {harmony_lat} ms should stay below strong {strong_lat} ms"
    );
}

/// §V.E: strong consistency has the highest read latency and the lowest
/// throughput; eventual consistency the opposite; Harmony sits in between,
/// much closer to eventual.
#[test]
fn latency_and_throughput_ordering_matches_figure5() {
    let threads = 40;
    let ops = 20_000;
    let eventual = run(Box::new(StaticPolicy::Eventual), threads, ops);
    let harmony40 = run(Box::new(HarmonyPolicy::new(5, 0.4)), threads, ops);
    let strong = run(Box::new(StaticPolicy::Strong), threads, ops);

    // Latency ordering (99th percentile of reads).
    assert!(strong.read_p99_ms() > eventual.read_p99_ms());
    assert!(harmony40.read_p99_ms() <= strong.read_p99_ms());
    // Throughput ordering.
    assert!(eventual.throughput() > strong.throughput());
    assert!(harmony40.throughput() > strong.throughput());
    // Harmony stays reasonably close to eventual consistency.
    assert!(
        harmony40.throughput() > 0.6 * eventual.throughput(),
        "harmony {:.0} ops/s should stay within reach of eventual {:.0} ops/s",
        harmony40.throughput(),
        eventual.throughput()
    );
}

/// The paper's throughput claim: Harmony improves throughput substantially
/// over the strong-consistency baseline under load. 20 threads is this
/// 10-node cluster's pre-saturation knee.
#[test]
fn harmony_outperforms_strong_consistency_in_throughput() {
    let threads = 20;
    let ops = 25_000;
    let harmony40 = run(Box::new(HarmonyPolicy::new(5, 0.4)), threads, ops);
    let strong = run(Box::new(StaticPolicy::Strong), threads, ops);
    let gain = harmony40.throughput() / strong.throughput() - 1.0;
    assert!(
        gain > 0.15,
        "expected a clear throughput gain over strong consistency, got {:.0}%",
        gain * 100.0
    );
}

/// Figure 5(c)/(d)'s claim holds *past* the saturation knee too: at 40
/// threads the write stage is saturated (the regime where the old
/// backlog-folded scalar `Tp` pushed the estimate to its ceiling), yet the
/// queueing-aware model keeps the throughput gain over strong consistency
/// while ground-truth staleness stays within the tolerated 40% rate.
#[test]
fn harmony_outperforms_strong_consistency_at_saturation() {
    let threads = 40;
    let ops = 25_000;
    let harmony40 = run(Box::new(HarmonyPolicy::new(5, 0.4)), threads, ops);
    let strong = run(Box::new(StaticPolicy::Strong), threads, ops);
    let gain = harmony40.throughput() / strong.throughput() - 1.0;
    assert!(
        gain > 0.15,
        "expected the throughput gain to persist at saturation, got {:.0}%",
        gain * 100.0
    );
    let stale_fraction = harmony40.stats.stale_fraction();
    assert!(
        stale_fraction <= 0.40,
        "harmony-40 exceeded its tolerated stale-read rate: {:.1}%",
        stale_fraction * 100.0
    );
    // The gain comes from *graded* levels, not from abandoning consistency:
    // the controller escalates some reads yet stays below ALL for most.
    assert!(harmony40.decisions.iter().any(|d| d.replicas_in_read > 1));
}

/// Regression guard: the old saturation behaviour — the backlog-folded
/// estimate saturating and Harmony collapsing onto the strong baseline with
/// near-ALL reads — must stay gone. At 60 threads (deep past the knee)
/// Harmony-40% must clearly outrun strong consistency, ALL-replica decisions
/// must be the exception rather than the rule, and staleness must still be
/// within tolerance.
#[test]
fn harmony_no_longer_collapses_to_strong_past_saturation() {
    let threads = 60;
    let ops = 25_000;
    let harmony40 = run(Box::new(HarmonyPolicy::new(5, 0.4)), threads, ops);
    let strong = run(Box::new(StaticPolicy::Strong), threads, ops);

    assert!(
        harmony40.throughput() > 1.15 * strong.throughput(),
        "saturated harmony-40 at {:.0} ops/s no longer clears strong ({:.0} ops/s) — \
         the scalar-backlog collapse is back",
        harmony40.throughput(),
        strong.throughput()
    );
    // The collapse signature was a majority of ALL (5-replica) decisions.
    let at_all = harmony40
        .decisions
        .iter()
        .filter(|d| d.replicas_in_read >= 5)
        .count();
    assert!(
        at_all * 2 < harmony40.decisions.len(),
        "ALL-replica decisions dominate again under saturation: {at_all}/{}",
        harmony40.decisions.len()
    );
    // Throughput is not bought with unbounded staleness.
    assert!(harmony40.stats.stale_fraction() <= 0.40);
    // The queueing signals driving this are visible in the decision records:
    // a saturated-but-stable write stage (high utilisation, wide cross-replica
    // spread) without a majority of divergence escalations.
    assert!(harmony40
        .decisions
        .iter()
        .any(|d| d.backlog_spread_ms > 1.0));
    let diverging = harmony40.decisions.iter().filter(|d| d.diverging).count();
    assert!(
        diverging * 2 < harmony40.decisions.len(),
        "divergence flagged on {diverging}/{} ticks — saturation misread as runaway",
        harmony40.decisions.len()
    );
}

/// Reads under Harmony use a mix of consistency levels: ONE when the estimate
/// is low, elevated levels when it crosses the tolerance — never a single
/// static level throughout a loaded run.
#[test]
fn harmony_actually_adapts_the_level() {
    let result = run(Box::new(HarmonyPolicy::new(5, 0.2)), 60, 25_000);
    assert!(
        result.read_level_histogram.len() > 1,
        "expected multiple read levels, got {:?}",
        result.read_level_histogram
    );
    assert!(result.decisions.iter().any(|d| d.replicas_in_read > 1));
    assert!(result.decisions.iter().any(|d| d.replicas_in_read == 1));
}

/// The tolerance under which the per-key split is exercised: strict enough
/// that the *global* controller must escalate to protect the Zipfian head.
const SPLIT_TOLERANCE: f64 = 0.03;

/// Runs a skewed-workload experiment with the global or the split controller
/// (same calibrated figure configuration either way). Two phases, YCSB
/// style: a warmup phase covering the controllers' shared cold start (the
/// monitor needs a few sweeps before either controller sees the load, and
/// the sketch needs its warmup sample count), then the measured phase the
/// claims are asserted on (`phase_results[1]`).
fn run_skewed(
    distribution: RequestDistribution,
    split: bool,
    threads: usize,
    ops: u64,
) -> ExperimentResult {
    let mut workload = WorkloadSpec::workload_a(2_000).with_distribution(distribution);
    workload.field_count = 4;
    workload.field_size = 32;
    let spec = ExperimentSpec {
        workload,
        phases: vec![Phase::new(threads, 8_000), Phase::new(threads, ops)],
        seed: 20120920,
        dual_read_measurement: false,
        // The Zipfian head: for the unscrambled chooser rank == index, so the
        // 16 lowest record indices are the hottest keys of the run.
        hot_key_prefix: 16,
        max_virtual_secs: 600.0,
    };
    let controller = if split {
        harmony_bench::experiments::split_figure_controller_config()
    } else {
        harmony_bench::experiments::figure_controller_config()
    };
    run_experiment(
        &profile(),
        store_config(),
        controller,
        Box::new(HarmonyPolicy::new(5, SPLIT_TOLERANCE)),
        spec,
    )
}

/// The per-key claim (ISSUE 3 acceptance): under Zipfian 0.99 the split
/// controller — heavy-hitter hot set read strong, cold tail at the cheap
/// default — achieves strictly higher throughput than the global controller
/// at an equal-or-lower hot-key stale-read rate, and its stale-read rate
/// *on the hot keys* stays within the tolerance the application asked for.
#[test]
fn split_controller_beats_global_on_zipfian_skew() {
    let threads = 40;
    let ops = 25_000;
    let global = run_skewed(RequestDistribution::Zipfian, false, threads, ops);
    let split = run_skewed(RequestDistribution::Zipfian, true, threads, ops);
    let split_measured = &split.phase_results[1].stats;
    let global_measured = &global.phase_results[1].stats;

    assert!(
        split_measured.throughput_ops_per_sec() > global_measured.throughput_ops_per_sec(),
        "split controller at {:.0} ops/s must strictly beat the global controller's {:.0} ops/s",
        split_measured.throughput_ops_per_sec(),
        global_measured.throughput_ops_per_sec()
    );
    assert!(
        split_measured.hot_reads > 0,
        "the zipfian head must be read"
    );
    let hot_stale = split_measured.hot_stale_fraction();
    assert!(
        hot_stale <= SPLIT_TOLERANCE,
        "hot-key stale rate {:.2}% exceeds the tolerated {:.0}%",
        hot_stale * 100.0,
        SPLIT_TOLERANCE * 100.0
    );
    assert!(
        hot_stale <= global_measured.hot_stale_fraction() + 1e-9,
        "split hot-key stale rate {:.2}% above the global controller's {:.2}%",
        hot_stale * 100.0,
        global_measured.hot_stale_fraction() * 100.0
    );
    // The gain comes from the split, not from dropping protection: heavy
    // hitters were actually tracked and individually decided.
    assert!(
        split.decisions.iter().any(|d| d.hot_keys > 0),
        "the split controller never tracked a hot key"
    );
    assert!(
        split.hot_set.iter().any(|h| h.replicas > 1),
        "no hot key was escalated above ONE: {:?}",
        split.hot_set
    );
    // And the hottest key of the Zipfian head is among them.
    assert!(
        split.hot_set.iter().any(|h| h.key == "user0"),
        "the rank-0 key is missing from the hot set: {:?}",
        split.hot_set
    );
}

/// The uniform regression guard (ISSUE 3 acceptance): with no skew there are
/// no heavy hitters, the hot set stays empty, and the split controller makes
/// byte-identical decisions to the global controller — the whole run is
/// identical, decision record for decision record.
#[test]
fn split_controller_degenerates_to_global_under_uniform_load() {
    let threads = 40;
    let ops = 15_000;
    let global = run_skewed(RequestDistribution::Uniform, false, threads, ops);
    let split = run_skewed(RequestDistribution::Uniform, true, threads, ops);

    assert!(
        split.hot_set.is_empty(),
        "uniform load produced a hot set: {:?}",
        split.hot_set
    );
    assert!(split.decisions.iter().all(|d| d.hot_keys == 0));
    assert_eq!(
        split.decisions, global.decisions,
        "split and global controllers must make byte-identical decisions under uniform load"
    );
    assert_eq!(split.read_level_histogram, global.read_level_histogram);
    assert_eq!(split.stats.operations, global.stats.operations);
    assert_eq!(split.stats.stale_reads, global.stats.stale_reads);
    assert_eq!(split.cluster_totals, global.cluster_totals);
}

//! Determinism of the multi-core sharded runtime.
//!
//! Two guarantees, both non-negotiable for a simulator whose results are
//! pinned and compared across commits:
//!
//! * **Shard-count-fixed reproducibility:** the same seed and the same shard
//!   count produce byte-identical results, run after run, even though every
//!   shard runs on its own OS thread. All cross-shard data flows through the
//!   ordered barrier exchange and every shard's RNG streams derive from
//!   `mix(seed, stripe)`, so thread scheduling has no channel through which
//!   to perturb the stats. Serialized-JSON equality is the strictest
//!   comparison available — it covers every histogram bucket and f64 bit.
//! * **`shards = 1` is the classic runner:** the single-shard case delegates
//!   to `run_experiment_with_faults` and must reproduce the committed golden
//!   pin (`per_key_determinism.rs`) exactly — the sharded entry point is a
//!   superset, never a fork, of the single-loop semantics.

use harmony::prelude::*;
use harmony_adaptive::policy::HarmonyPolicy;
use harmony_sim::topology::NodeId;
use harmony_store::config::StoreConfig;
use harmony_ycsb::sharded::run_sharded_experiment;

/// The exact configuration of the committed golden pin
/// (`per_key_determinism::run_split`), routed through the sharded entry
/// point with the requested shard count.
fn run_sharded(seed: u64, shards: usize) -> ExperimentResult {
    let mut workload = WorkloadSpec::workload_a(1_000);
    workload.field_count = 2;
    workload.field_size = 16;
    let spec = ExperimentSpec {
        workload,
        phases: vec![Phase::new(24, 12_000)],
        seed,
        dual_read_measurement: false,
        hot_key_prefix: 8,
        max_virtual_secs: 600.0,
    };
    let store = StoreConfig {
        replication_factor: 5,
        node_concurrency: 2,
        read_service_ms: 0.25,
        write_service_ms: 0.5,
        client_latency_ms: 0.15,
        ..StoreConfig::default()
    };
    run_sharded_experiment(
        &harmony::profiles::grid5000_with_nodes(8),
        store,
        harmony_bench::experiments::split_figure_controller_config(),
        Box::new(HarmonyPolicy::new(5, 0.05)),
        spec,
        FaultSchedule::empty(),
        shards,
    )
}

#[test]
fn single_shard_reproduces_the_golden_stats_pin_exactly() {
    let r = run_sharded(20120920, 1);
    // The same numbers `per_key_determinism::golden_stats_pin_for_seed_20120920`
    // pins for the classic runner: the sharded entry point at shards = 1 is
    // the classic runner.
    assert_eq!(r.stats.operations, 12_000);
    assert_eq!(r.stats.reads, 5_876);
    assert_eq!(r.stats.writes, 6_124);
    assert_eq!(r.stats.stale_reads, 238);
    assert_eq!(r.stats.hot_reads, 2_200);
    assert_eq!(r.stats.hot_stale_reads, 84);
    assert_eq!(r.cluster_totals.reads_submitted, 5_893);
    assert_eq!(r.cluster_totals.writes_submitted, 6_130);
    assert_eq!(r.cluster_totals.repairs_issued, 12_298);
    assert_eq!(r.cluster_totals.protocol_drops, 0);
    assert_eq!(r.decisions.len(), 21);
}

#[test]
fn same_seed_and_shard_count_produce_byte_identical_results() {
    for shards in [2usize, 4] {
        let a = run_sharded(20120920, shards);
        let b = run_sharded(20120920, shards);
        // JSON equality covers every latency-histogram bucket and every f64
        // bit of the decision timeline — nothing to hide behind.
        assert_eq!(
            serde_json::to_string(&a.stats).unwrap(),
            serde_json::to_string(&b.stats).unwrap(),
            "stats diverged at shards={shards}"
        );
        assert_eq!(
            serde_json::to_string(&a.phase_results).unwrap(),
            serde_json::to_string(&b.phase_results).unwrap(),
            "phase results diverged at shards={shards}"
        );
        assert_eq!(
            a.decisions, b.decisions,
            "decisions diverged at shards={shards}"
        );
        assert_eq!(a.hot_set, b.hot_set, "hot set diverged at shards={shards}");
        assert_eq!(a.read_level_histogram, b.read_level_histogram);
        assert_eq!(a.cluster_totals, b.cluster_totals);
    }
}

#[test]
fn sharding_conserves_the_workload_and_stays_clean() {
    let r = run_sharded(20120920, 4);
    // Thread/op splitting conserves the spec: 12 000 operations total.
    assert_eq!(r.stats.operations, 12_000);
    assert_eq!(r.stats.reads + r.stats.writes, 12_000);
    // Stats and store ground truth agree after the merge.
    assert_eq!(r.stats.reads, r.cluster_totals.reads_completed);
    assert_eq!(r.stats.writes, r.cluster_totals.writes_completed);
    assert_eq!(r.stats.stale_reads, r.cluster_totals.stale_reads);
    // Fault-free sharded runs abort nothing and drop nothing.
    assert_eq!(r.stats.aborted_ops, 0);
    assert_eq!(r.cluster_totals.protocol_drops, 0);
    // The merged control plane saw real traffic and produced a hot set from
    // the merged sketches (the workload is the skewed split-figure one).
    assert!(r.decisions.iter().any(|d| d.read_rate > 0.0));
    assert!(
        r.decisions.iter().any(|d| d.hot_keys > 0),
        "per-key escalation must engage through the sketch merge"
    );
}

#[test]
fn chaos_schedule_runs_panic_free_across_shards() {
    // A membership-churn schedule (crash, join, decommission, restart) on
    // the sharded runtime: every shard replays the same faults; the run
    // must complete without panics and with identical results run-to-run.
    let mut workload = WorkloadSpec::workload_a(1_000);
    workload.field_count = 2;
    workload.field_size = 16;
    let spec = ExperimentSpec {
        workload,
        phases: vec![Phase::new(24, 8_000)],
        seed: 20120920,
        dual_read_measurement: false,
        hot_key_prefix: 8,
        max_virtual_secs: 600.0,
    };
    let store = StoreConfig {
        replication_factor: 3,
        ..StoreConfig::default()
    };
    let faults = FaultSchedule::empty()
        .then_at(0.05, FaultEvent::CrashNode { node: NodeId(2) })
        .then_at(0.10, FaultEvent::JoinNode { dc: 0, rack: 0 })
        .then_at(0.15, FaultEvent::DecommissionNode { node: NodeId(4) })
        .then_at(0.20, FaultEvent::RestartNode { node: NodeId(2) });
    let run = |_: usize| {
        run_sharded_experiment(
            &harmony::profiles::grid5000_with_nodes(8),
            store.clone(),
            harmony_bench::experiments::split_figure_controller_config(),
            Box::new(HarmonyPolicy::new(3, 0.05)),
            spec.clone(),
            faults.clone(),
            3,
        )
    };
    let a = run(0);
    let b = run(1);
    assert!(a.stats.operations >= 8_000);
    assert!(a.fault_counters.total() >= 4);
    assert_eq!(
        serde_json::to_string(&a.stats).unwrap(),
        serde_json::to_string(&b.stats).unwrap(),
        "chaos run must stay deterministic across shards"
    );
    assert_eq!(a.cluster_totals, b.cluster_totals);
}

//! Determinism of the per-key (split) pipeline: same seed ⇒ identical hot
//! sets, per-key backlogs and decision records, end to end.
//!
//! The sim determinism suite (`harmony-sim/tests/determinism.rs`) covers the
//! event kernel and the per-node service models; this suite extends the
//! guarantee to the per-key telemetry stack added for hot-spot staleness:
//! the write-key sample stream, the space-saving sketch, the per-key rate
//! smoothing, the per-key backlog probe and the split controller's hot-set
//! decisions. Any hidden nondeterminism (hash-order iteration, wall-clock
//! leakage) would surface here as a diverging hot set or decision record.

use harmony::prelude::*;

fn run_split(seed: u64) -> ExperimentResult {
    run_split_with_controller(
        seed,
        harmony_bench::experiments::split_figure_controller_config(),
    )
}

fn run_split_with_controller(
    seed: u64,
    controller: harmony_adaptive::config::ControllerConfig,
) -> ExperimentResult {
    let mut workload = WorkloadSpec::workload_a(1_000);
    workload.field_count = 2;
    workload.field_size = 16;
    let spec = ExperimentSpec {
        workload,
        phases: vec![Phase::new(24, 12_000)],
        seed,
        dual_read_measurement: false,
        hot_key_prefix: 8,
        max_virtual_secs: 600.0,
    };
    let store = StoreConfig {
        replication_factor: 5,
        node_concurrency: 2,
        read_service_ms: 0.25,
        write_service_ms: 0.5,
        client_latency_ms: 0.15,
        ..StoreConfig::default()
    };
    // Routed through the fault-aware entry point with an explicitly *empty*
    // schedule: the golden pin below is therefore also the guard that the
    // whole chaos layer (fault masks, hint plumbing, membership checks) is
    // byte-for-byte free when no fault fires.
    run_experiment_with_faults(
        &harmony::profiles::grid5000_with_nodes(8),
        store,
        controller,
        Box::new(HarmonyPolicy::new(5, 0.05)),
        spec,
        FaultSchedule::empty(),
    )
}

/// The same run as [`run_split`], but routed through the retry-aware entry
/// point with every self-healing knob present and disabled — the
/// degeneration arm of the golden pin.
fn run_split_through_retry_entry_point(seed: u64) -> ExperimentResult {
    let mut workload = WorkloadSpec::workload_a(1_000);
    workload.field_count = 2;
    workload.field_size = 16;
    let spec = ExperimentSpec {
        workload,
        phases: vec![Phase::new(24, 12_000)],
        seed,
        dual_read_measurement: false,
        hot_key_prefix: 8,
        max_virtual_secs: 600.0,
    };
    let store = StoreConfig {
        replication_factor: 5,
        node_concurrency: 2,
        read_service_ms: 0.25,
        write_service_ms: 0.5,
        client_latency_ms: 0.15,
        anti_entropy_interval_secs: 0.0,
        ..StoreConfig::default()
    };
    run_experiment_with_retry(
        &harmony::profiles::grid5000_with_nodes(8),
        store,
        harmony_bench::experiments::split_figure_controller_config(),
        Box::new(HarmonyPolicy::new(5, 0.05)),
        spec,
        FaultSchedule::empty(),
        RetryPolicy::default(),
    )
}

#[test]
fn same_seed_reproduces_hot_sets_backlogs_and_decisions() {
    let a = run_split(20120920);
    let b = run_split(20120920);

    // The decision records carry every tick's monitored rates, estimates,
    // chosen levels and hot-key counts — equality pins the whole control
    // timeline, not just the endpoint.
    assert_eq!(a.decisions, b.decisions);
    assert!(
        a.decisions.iter().any(|d| d.hot_keys > 0),
        "the skewed run must actually exercise the per-key path"
    );
    // The final hot set matches key for key, including the per-key write
    // rates and backlogs (f64-exact: same inputs, same arithmetic).
    assert_eq!(a.hot_set, b.hot_set);
    assert!(!a.hot_set.is_empty());
    // And the measured outcome is identical too.
    assert_eq!(a.read_level_histogram, b.read_level_histogram);
    assert_eq!(a.stats.operations, b.stats.operations);
    assert_eq!(a.stats.reads, b.stats.reads);
    assert_eq!(a.stats.stale_reads, b.stats.stale_reads);
    assert_eq!(a.stats.hot_reads, b.stats.hot_reads);
    assert_eq!(a.stats.hot_stale_reads, b.stats.hot_stale_reads);
    assert_eq!(a.cluster_totals, b.cluster_totals);
}

/// Golden-stats pin across the allocation-free refactor: the fixed seed must
/// keep producing *these exact* run stats, decision timeline and hot set.
///
/// The goldens were captured from the pre-interning implementation (string
/// keys, per-replica payload clones, uncached ring walks) and re-verified
/// byte-identical after key interning, the placement cache and the
/// `Arc`-shared payloads landed — so any future drift here means a change in
/// *behaviour*, not just in performance. If a deliberate semantic change
/// moves these numbers, re-pin them in the same commit and say why.
#[test]
fn golden_stats_pin_for_seed_20120920() {
    let r = run_split(20120920);

    // Aggregate run stats.
    assert_eq!(r.stats.operations, 12_000);
    assert_eq!(r.stats.reads, 5_876);
    assert_eq!(r.stats.writes, 6_124);
    assert_eq!(r.stats.stale_reads, 238);
    assert_eq!(r.stats.hot_reads, 2_200);
    assert_eq!(r.stats.hot_stale_reads, 84);

    // The store's own ground-truth totals.
    assert_eq!(r.cluster_totals.reads_submitted, 5_893);
    assert_eq!(r.cluster_totals.writes_submitted, 6_130);
    assert_eq!(r.cluster_totals.reads_completed, 5_876);
    assert_eq!(r.cluster_totals.writes_completed, 6_124);
    assert_eq!(r.cluster_totals.stale_reads, 238);
    assert_eq!(r.cluster_totals.repairs_issued, 12_298);

    // The control timeline: tick count, summed hot-key and replica columns,
    // and the final tick's monitored rates (f64-exact: same inputs, same
    // arithmetic, same order).
    assert_eq!(r.decisions.len(), 21);
    assert_eq!(
        r.decisions.iter().map(|d| d.hot_keys as u64).sum::<u64>(),
        103
    );
    assert_eq!(
        r.decisions
            .iter()
            .map(|d| d.replicas_in_read as u64)
            .sum::<u64>(),
        83
    );
    let last = r.decisions.last().unwrap();
    assert_eq!(last.read_rate, 5663.366336633663);
    assert_eq!(last.write_rate, 5579.207920792079);
    assert_eq!(last.tp_secs, 9.358319320258281e-5);
    assert_eq!(last.estimate, Some(0.0032931815225742756));
    assert_eq!(last.hot_keys, 34);
    assert_eq!(last.replicas_in_read, 1);

    // Read-level histogram: how many reads ran at each replica count.
    let histogram: Vec<(usize, u64)> = r
        .read_level_histogram
        .iter()
        .map(|(k, v)| (*k, *v))
        .collect();
    assert_eq!(
        histogram,
        vec![(1, 686), (2, 305), (3, 275), (4, 311), (5, 4_299)]
    );

    // The final hot set, key for key (name-sorted, as reported).
    let hot: Vec<(&str, usize)> = r
        .hot_set
        .iter()
        .map(|h| (h.key.as_str(), h.replicas))
        .collect();
    assert_eq!(hot.len(), 34);
    assert_eq!(hot[0], ("user0", 5));
    assert_eq!(hot[1], ("user1", 5));
    assert_eq!(hot[2], ("user10", 5));
    // The two keys decided below ALL sit exactly where they did pre-refactor.
    assert_eq!(hot.iter().filter(|(_, replicas)| *replicas == 4).count(), 2);
    assert_eq!(hot[21], ("user28", 4));
    assert_eq!(hot[27], ("user33", 4));
    assert!(hot.iter().all(|(_, replicas)| (4..=5).contains(replicas)));

    // Latency percentiles through the log-bucketed histogram.
    assert_eq!(
        (r.stats.read_latency.percentile_ms(0.5) * 1000.0).round(),
        2_240.0
    );
    assert_eq!(
        (r.stats.read_latency.percentile_ms(0.99) * 1000.0).round(),
        3_520.0
    );
    assert_eq!(
        (r.stats.write_latency.percentile_ms(0.99) * 1000.0).round(),
        9_088.0
    );

    // The pin doubles as the proactive-degeneration guard: with the switch
    // off, every proactive knob can be tuned to its most aggressive setting
    // and the run still reproduces the exact same decision timeline, hot set
    // and outcome — the disabled path performs no extra arithmetic at all.
    let mut tuned_but_off = harmony_bench::experiments::split_figure_controller_config();
    tuned_but_off.proactive = ProactiveConfig {
        enabled: false,
        prediction_weight: 1.0,
        min_utilization: 0.0,
        horizon_secs: 9.0,
    };
    let off = run_split_with_controller(20120920, tuned_but_off);
    assert_eq!(off.decisions, r.decisions);
    assert_eq!(off.hot_set, r.hot_set);
    assert_eq!(off.read_level_histogram, r.read_level_histogram);
    assert_eq!(off.stats.stale_reads, r.stats.stale_reads);
    assert_eq!(off.cluster_totals, r.cluster_totals);

    // And the self-healing-degeneration guard: the same run routed through
    // the retry-aware entry point, with every repair knob present but
    // disabled (default retry/hedge policy, anti-entropy interval at zero,
    // suspicion discounting at zero, repair-blind staleness model), must
    // reproduce the exact same timeline and outcome. The knobs are free
    // until armed.
    let healed_off = run_split_through_retry_entry_point(20120920);
    assert_eq!(healed_off.decisions, r.decisions);
    assert_eq!(healed_off.hot_set, r.hot_set);
    assert_eq!(healed_off.read_level_histogram, r.read_level_histogram);
    assert_eq!(healed_off.stats.stale_reads, r.stats.stale_reads);
    assert_eq!(healed_off.cluster_totals, r.cluster_totals);
    assert_eq!(healed_off.stats.retries, 0);
    assert_eq!(healed_off.stats.hedged_reads, 0);
    assert_eq!(healed_off.cluster_totals.ae_rounds, 0);
}

#[test]
fn different_seed_changes_the_run_but_not_the_hot_head() {
    let a = run_split(1);
    let b = run_split(2);
    // Different seeds diverge (different arrivals, service times, probes)...
    assert_ne!(a.decisions, b.decisions);
    // ...but the Zipfian head is a property of the workload, not the seed:
    // both runs identify the rank-0 key as hot.
    assert!(
        a.hot_set.iter().any(|h| h.key == "user0"),
        "{:?}",
        a.hot_set
    );
    assert!(
        b.hot_set.iter().any(|h| h.key == "user0"),
        "{:?}",
        b.hot_set
    );
}

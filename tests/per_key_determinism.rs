//! Determinism of the per-key (split) pipeline: same seed ⇒ identical hot
//! sets, per-key backlogs and decision records, end to end.
//!
//! The sim determinism suite (`harmony-sim/tests/determinism.rs`) covers the
//! event kernel and the per-node service models; this suite extends the
//! guarantee to the per-key telemetry stack added for hot-spot staleness:
//! the write-key sample stream, the space-saving sketch, the per-key rate
//! smoothing, the per-key backlog probe and the split controller's hot-set
//! decisions. Any hidden nondeterminism (hash-order iteration, wall-clock
//! leakage) would surface here as a diverging hot set or decision record.

use harmony::prelude::*;

fn run_split(seed: u64) -> ExperimentResult {
    let mut workload = WorkloadSpec::workload_a(1_000);
    workload.field_count = 2;
    workload.field_size = 16;
    let spec = ExperimentSpec {
        workload,
        phases: vec![Phase::new(24, 12_000)],
        seed,
        dual_read_measurement: false,
        hot_key_prefix: 8,
        max_virtual_secs: 600.0,
    };
    let store = StoreConfig {
        replication_factor: 5,
        node_concurrency: 2,
        read_service_ms: 0.25,
        write_service_ms: 0.5,
        client_latency_ms: 0.15,
        ..StoreConfig::default()
    };
    run_experiment(
        &harmony::profiles::grid5000_with_nodes(8),
        store,
        harmony_bench::experiments::split_figure_controller_config(),
        Box::new(HarmonyPolicy::new(5, 0.05)),
        spec,
    )
}

#[test]
fn same_seed_reproduces_hot_sets_backlogs_and_decisions() {
    let a = run_split(20120920);
    let b = run_split(20120920);

    // The decision records carry every tick's monitored rates, estimates,
    // chosen levels and hot-key counts — equality pins the whole control
    // timeline, not just the endpoint.
    assert_eq!(a.decisions, b.decisions);
    assert!(
        a.decisions.iter().any(|d| d.hot_keys > 0),
        "the skewed run must actually exercise the per-key path"
    );
    // The final hot set matches key for key, including the per-key write
    // rates and backlogs (f64-exact: same inputs, same arithmetic).
    assert_eq!(a.hot_set, b.hot_set);
    assert!(!a.hot_set.is_empty());
    // And the measured outcome is identical too.
    assert_eq!(a.read_level_histogram, b.read_level_histogram);
    assert_eq!(a.stats.operations, b.stats.operations);
    assert_eq!(a.stats.reads, b.stats.reads);
    assert_eq!(a.stats.stale_reads, b.stats.stale_reads);
    assert_eq!(a.stats.hot_reads, b.stats.hot_reads);
    assert_eq!(a.stats.hot_stale_reads, b.stats.hot_stale_reads);
    assert_eq!(a.cluster_totals, b.cluster_totals);
}

#[test]
fn different_seed_changes_the_run_but_not_the_hot_head() {
    let a = run_split(1);
    let b = run_split(2);
    // Different seeds diverge (different arrivals, service times, probes)...
    assert_ne!(a.decisions, b.decisions);
    // ...but the Zipfian head is a property of the workload, not the seed:
    // both runs identify the rank-0 key as hot.
    assert!(
        a.hot_set.iter().any(|h| h.key == "user0"),
        "{:?}",
        a.hot_set
    );
    assert!(
        b.hot_set.iter().any(|h| h.key == "user0"),
        "{:?}",
        b.hot_set
    );
}

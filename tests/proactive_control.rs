//! Proactive (predicted-wait) control, end to end (ISSUE 6 acceptance): the
//! proactive controller escalates at least one monitoring period before the
//! reactive one after a correlated crash, relaxes no later once the cluster
//! heals, keeps every decision input finite through a chaos schedule that
//! changes the topology mid-trend-window, and — disabled — is byte-identical
//! to the reactive controller even under faults (the healthy-run guarantee
//! is pinned to exact numbers in `tests/per_key_determinism.rs`).
//!
//! Everything runs the full stack on the calibrated Grid'5000 figure
//! configuration, the same scenario the `proactive_sweep` binary sweeps: a
//! correlated eight-node outage (every other node, so every key keeps live
//! replicas) that steps the per-replica arrival rate past saturation. The
//! predicted wait sees that step in the very next sweep; the measured
//! backlog trend cannot, because the monitor segments its histories on the
//! topology change and the dispersion only widens once queues actually fill.

use harmony::prelude::*;
use harmony::sim::topology::NodeId;
use harmony_bench::experiments::{
    enable_proactive, grid5000_experiment_config, scaled_workload_a, ExperimentConfig, PolicySpec,
};

/// The figure configuration's monitoring period (seconds).
const INTERVAL_SECS: f64 = 0.05;

/// Client threads: a calm regime, comfortably inside the 20% tolerance, so
/// the first escalation is the controller's response to the fault.
const THREADS: usize = 16;

/// The scaled experiment configuration shared by every test here: the
/// Grid'5000 figure configuration shrunk to CI size, with the write stage
/// near saturation (two service slots, slower mutations) so losing nodes
/// has headroom to push it past ρ = 1.
fn config() -> ExperimentConfig {
    let mut config = grid5000_experiment_config();
    config.records = 4_000;
    config.operations_per_thread = 300;
    config.min_operations = 9_000;
    config.store.node_concurrency = 2;
    config.store.write_service_ms = 0.6;
    config
}

/// The main load phase every run starts with.
fn load_phase(config: &ExperimentConfig) -> Phase {
    Phase::new(THREADS, config.operations_for(THREADS))
}

/// A near-idle tail appended to the step-response runs: the post-heal drain
/// completes under it, so both controllers get room to settle back to cheap
/// reads and the relax comparison is not cut off by the end of the run.
fn idle_tail() -> Phase {
    Phase::new(4, 2_000)
}

/// Runs workload A under the global Harmony controller, reactive or
/// proactive — every other input byte-identical.
fn run(
    config: &ExperimentConfig,
    proactive: bool,
    phases: Vec<Phase>,
    faults: FaultSchedule,
) -> ExperimentResult {
    let controller = if proactive {
        enable_proactive(config.controller)
    } else {
        config.controller
    };
    let spec = ExperimentSpec {
        workload: scaled_workload_a(config.records),
        phases,
        seed: config.seed,
        dual_read_measurement: false,
        hot_key_prefix: 0,
        max_virtual_secs: 3_600.0,
    };
    run_experiment_with_faults(
        &config.profile,
        config.store.clone(),
        controller,
        PolicySpec::Harmony(0.20).build(config.store.replication_factor),
        spec,
        faults,
    )
}

/// The correlated outage: eight alternating nodes crash together and restart
/// together later.
fn outage() -> Vec<NodeId> {
    (0..8).map(|i| NodeId(2 * i + 1)).collect()
}

fn crash_schedule(crash_at: f64, restart_at: f64) -> FaultSchedule {
    let mut schedule = FaultSchedule::empty();
    for node in outage() {
        schedule = schedule
            .crash_at(crash_at, node)
            .restart_at(restart_at, node);
    }
    schedule
}

/// When the controller first left cheap reads at/after `step_secs` (either
/// by raising the default level or by flagging divergence).
fn first_escalation_secs(result: &ExperimentResult, step_secs: f64) -> Option<f64> {
    let step = SimTime::from_secs_f64(step_secs);
    result
        .decisions
        .iter()
        .find(|d| d.at >= step && (d.replicas_in_read > 1 || d.diverging))
        .map(|d| d.at.as_secs_f64())
}

/// The earliest tick at/after `from_secs` from which every remaining
/// decision reads at ONE (`None` if the run never settles).
fn relaxed_from_secs(result: &ExperimentResult, from_secs: f64) -> Option<f64> {
    let from = SimTime::from_secs_f64(from_secs);
    let mut relaxed_at: Option<f64> = None;
    for d in result.decisions.iter().filter(|d| d.at >= from) {
        if d.replicas_in_read == 1 {
            relaxed_at.get_or_insert(d.at.as_secs_f64());
        } else {
            relaxed_at = None;
        }
    }
    relaxed_at
}

/// Acceptance: after a correlated crash the proactive controller escalates
/// at least one monitoring period before the reactive one, and relaxes no
/// later once the replicas are back and the hint drain completes.
#[test]
fn proactive_escalates_a_period_earlier_and_relaxes_no_later() {
    let config = config();
    let baseline = run(
        &config,
        false,
        vec![load_phase(&config)],
        FaultSchedule::empty(),
    );
    let duration = baseline.stats.duration_secs();
    assert!(duration > 0.3, "baseline too short: {duration}s");
    let crash_at = duration * 0.3;
    let restart_at = duration * 0.65;
    // The pre-crash regime really is calm: the reactive baseline stays at
    // cheap reads until well past the crash point, so the first escalation
    // in the fault runs is fault response, not workload drift.
    assert!(
        baseline
            .decisions
            .iter()
            .filter(|d| d.at.as_secs_f64() <= restart_at)
            .all(|d| d.replicas_in_read == 1),
        "pre-fault regime escalated on its own — the lag comparison would be vacuous"
    );

    let phases = || vec![load_phase(&config), idle_tail()];
    let reactive = run(
        &config,
        false,
        phases(),
        crash_schedule(crash_at, restart_at),
    );
    let proactive = run(
        &config,
        true,
        phases(),
        crash_schedule(crash_at, restart_at),
    );
    assert_eq!(proactive.fault_counters.crashes, 8);
    assert_eq!(proactive.fault_counters.restarts, 8);
    assert_eq!(reactive.fault_counters.crashes, 8);

    // Escalation: the proactive controller reads the post-crash utilisation
    // step out of the predicted wait in the next sweep; the reactive one
    // has to wait for the backlog to materialise (its trend history was
    // segmented by the very topology change it needs to react to).
    let p = first_escalation_secs(&proactive, crash_at)
        .expect("proactive controller never escalated after the crash");
    let r = first_escalation_secs(&reactive, crash_at)
        .expect("reactive controller never escalated after the crash");
    assert!(
        p + INTERVAL_SECS <= r + 1e-9,
        "proactive escalated at {p:.3}s, reactive at {r:.3}s — less than one \
         monitoring period ({INTERVAL_SECS}s) of lead"
    );

    // Relax: once the restarted replicas drain their hints the predicted
    // wait collapses ahead of the measured dispersion, so the proactive
    // controller settles back to cheap reads no later than the reactive one.
    let p_relax = relaxed_from_secs(&proactive, restart_at);
    let r_relax = relaxed_from_secs(&reactive, restart_at);
    match (p_relax, r_relax) {
        (Some(p), Some(r)) => assert!(
            p <= r + 1e-9,
            "proactive relaxed at {p:.3}s, later than reactive at {r:.3}s"
        ),
        (Some(_), None) => {} // reactive never settled; proactive did.
        (p, r) => {
            panic!("proactive failed to settle after the heal: proactive {p:?}, reactive {r:?}")
        }
    }
    // And the lead was not bought with weaker reads overall: per post-crash
    // tick, the proactive controller reads at least as many replicas while
    // the cluster is degraded.
    let escalated_ticks = |result: &ExperimentResult| {
        result
            .decisions
            .iter()
            .filter(|d| d.at >= SimTime::from_secs_f64(crash_at) && d.replicas_in_read > 1)
            .count()
    };
    assert!(escalated_ticks(&proactive) > 0);
    assert!(escalated_ticks(&reactive) > 0);
}

/// Satellite regression, end to end: a chaos schedule whose topology changes
/// land mid-trend-window (crashes, a join, restarts, another join) never
/// feeds the decision layer a NaN or infinity — the M/G/1 accessors
/// saturate instead of overflowing at ρ ≥ 1, negative backlogs cannot leave
/// the store, and the monitor segments its slopes at every epoch change
/// rather than spanning the membership shift.
#[test]
fn chaos_with_mid_window_joins_keeps_every_decision_input_finite() {
    let config = config();
    let baseline = run(
        &config,
        true,
        vec![load_phase(&config)],
        FaultSchedule::empty(),
    );
    let duration = baseline.stats.duration_secs();
    let schedule = FaultSchedule::empty()
        .crash_at(duration * 0.2, NodeId(2))
        .crash_at(duration * 0.22, NodeId(5))
        .join_at(duration * 0.35, 0, 0)
        .restart_at(duration * 0.5, NodeId(2))
        .restart_at(duration * 0.52, NodeId(5))
        .join_at(duration * 0.7, 0, 1);
    for proactive in [false, true] {
        let result = run(
            &config,
            proactive,
            vec![load_phase(&config)],
            schedule.clone(),
        );
        assert_eq!(result.fault_counters.crashes, 2);
        assert_eq!(result.fault_counters.joins, 2);
        assert!(!result.decisions.is_empty());
        for d in &result.decisions {
            assert!(d.read_rate.is_finite() && d.read_rate >= 0.0);
            assert!(d.write_rate.is_finite() && d.write_rate >= 0.0);
            assert!(d.latency_ms.is_finite() && d.latency_ms >= 0.0);
            assert!(d.backlog_ms.is_finite() && d.backlog_ms >= 0.0);
            assert!(d.backlog_spread_ms.is_finite() && d.backlog_spread_ms >= 0.0);
            assert!(d.utilization.is_finite() && d.utilization >= 0.0);
            assert!(d.tp_secs.is_finite() && d.tp_secs >= 0.0);
            assert!(
                d.predicted_wait_ms.is_finite() && d.predicted_wait_ms >= 0.0,
                "predicted wait must saturate, not overflow: {} ms at {:?} (proactive={proactive})",
                d.predicted_wait_ms,
                d.at
            );
            if let Some(e) = d.estimate {
                assert!(e.is_finite() && (0.0..=1.0).contains(&e));
            }
        }
    }
}

/// Disabled, the proactive path is byte-identical to the reactive
/// controller even under the crash schedule — every knob can be tuned as
/// long as the switch is off, and not a bit of the decision timeline moves.
/// (The healthy-run form of this guarantee is pinned to exact golden stats
/// in `tests/per_key_determinism.rs`.)
#[test]
fn disabled_proactive_is_byte_identical_under_faults() {
    let config = config();
    let baseline = run(
        &config,
        false,
        vec![load_phase(&config)],
        FaultSchedule::empty(),
    );
    let duration = baseline.stats.duration_secs();
    let schedule = crash_schedule(duration * 0.3, duration * 0.55);

    let reactive = run(&config, false, vec![load_phase(&config)], schedule.clone());

    let mut disabled = config.clone();
    disabled.controller.proactive = ProactiveConfig {
        enabled: false,
        prediction_weight: 1.0,
        min_utilization: 0.0,
        horizon_secs: 9.0,
    };
    let tuned_but_off = run(&disabled, false, vec![load_phase(&config)], schedule);

    assert_eq!(reactive.decisions, tuned_but_off.decisions);
    assert_eq!(
        reactive.read_level_histogram,
        tuned_but_off.read_level_histogram
    );
    assert_eq!(reactive.stats.operations, tuned_but_off.stats.operations);
    assert_eq!(reactive.stats.stale_reads, tuned_but_off.stats.stale_reads);
    assert_eq!(reactive.cluster_totals, tuned_but_off.cluster_totals);
}

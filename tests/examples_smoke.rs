//! Smoke tests for the `examples/` binaries: run each one with reduced work
//! (`--quick` where the example supports it) and require a clean exit with
//! plausible output, so the examples cannot silently rot.
//!
//! `cargo test` builds every example before running integration tests, so the
//! binaries are guaranteed to exist next to this test's own executable under
//! `target/<profile>/examples/`.

use std::path::PathBuf;
use std::process::Command;

/// Locates `target/<profile>/examples/<name>` relative to this test binary
/// (which lives in `target/<profile>/deps/`).
fn example_bin(name: &str) -> PathBuf {
    let mut dir = std::env::current_exe().expect("test executable path");
    dir.pop(); // strip the test binary file name -> deps/
    if dir.ends_with("deps") {
        dir.pop(); // -> target/<profile>/
    }
    let bin = dir.join("examples").join(name);
    assert!(
        bin.exists(),
        "example binary {} not found at {} (examples are built by `cargo test`)",
        name,
        bin.display()
    );
    bin
}

fn run_example(name: &str, args: &[&str]) -> String {
    let output = Command::new(example_bin(name))
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to launch example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn quickstart_runs() {
    let out = run_example("quickstart", &["--quick"]);
    assert!(out.contains("quickstart"), "unexpected output:\n{out}");
    for policy in ["eventual", "harmony-40", "harmony-20", "strong"] {
        assert!(out.contains(policy), "missing policy row {policy}:\n{out}");
    }
}

#[test]
fn webshop_vs_social_runs() {
    let out = run_example("webshop_vs_social", &["--quick"]);
    assert!(out.contains("web-shop"), "unexpected output:\n{out}");
    assert!(out.contains("social network"), "unexpected output:\n{out}");
}

#[test]
fn live_cluster_runs() {
    let out = run_example("live_cluster", &["--quick"]);
    assert!(out.contains("Live cluster"), "unexpected output:\n{out}");
    assert!(
        out.contains("client operations"),
        "unexpected output:\n{out}"
    );
}

#[test]
fn consistency_explorer_runs() {
    // Positional arguments: replication factor and average write size.
    let out = run_example("consistency_explorer", &["3", "256"]);
    assert!(!out.trim().is_empty(), "explorer printed nothing");
}

#[test]
fn latency_spike_runs() {
    let out = run_example("latency_spike", &[]);
    assert!(out.contains("latency"), "unexpected output:\n{out}");
    assert!(out.contains("read level"), "unexpected output:\n{out}");
}

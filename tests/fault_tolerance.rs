//! Paper-grade claims under injected faults (ISSUE 5 acceptance): the
//! adaptive controller holds the application's staleness tolerance *through*
//! replica crashes, rides out the hint-drain backlog spike after recovery,
//! relaxes back once the cluster heals, and an empty fault schedule is
//! byte-identical to a run without the chaos layer (the golden-stats pin in
//! `tests/per_key_determinism.rs` now runs through the fault-aware entry
//! point, so that guarantee is pinned to exact numbers there).
//!
//! Everything here runs the full stack — simulated cluster with fault state,
//! hinted handoff, monitoring over live replicas only, adaptive controller,
//! YCSB-style closed-loop clients — on the same calibrated Grid'5000
//! experiment configuration the `fault_sweep` binary sweeps. Fault times are
//! calibrated from a measured no-faults baseline, so the schedules land
//! mid-run regardless of how throughput evolves.

use harmony::prelude::*;
use harmony::sim::topology::NodeId;
use harmony_bench::experiments::{
    grid5000_experiment_config, run_workload_point_with_faults, ExperimentConfig, PolicySpec,
};

/// The tolerated hot-key stale-read rate of the crash claim (the looser of
/// the paper's two Grid'5000 settings).
const TOLERANCE: f64 = 0.40;

/// The number of lowest-index records reported as the hot keys (the head of
/// the unscrambled Zipfian chooser).
const HOT_PREFIX: u64 = 16;

/// The scaled experiment configuration shared by every test here: the
/// Grid'5000 figure configuration shrunk to CI size (the same scaling the
/// `fault_sweep --quick` smoke runs).
fn config() -> ExperimentConfig {
    let mut config = grid5000_experiment_config();
    config.records = 4_000;
    config.operations_per_thread = 400;
    config.min_operations = 12_000;
    config
}

/// Runs the Zipfian workload under `policy` with `faults`; Harmony policies
/// get the split (per-key) controller, exactly like the sweep binary.
fn run(config: &ExperimentConfig, policy: &PolicySpec, faults: FaultSchedule) -> ExperimentResult {
    let workload =
        WorkloadSpec::workload_a(config.records).with_distribution(RequestDistribution::Zipfian);
    run_workload_point_with_faults(
        config,
        workload,
        policy,
        24,
        HOT_PREFIX,
        matches!(policy, PolicySpec::Harmony(_)),
        faults,
    )
}

/// Acceptance (a): with a replica crash injected mid-run under Zipfian load,
/// the adaptive controller keeps the hot-key stale rate within the
/// configured tolerance while beating always-strong throughput under the
/// *same* fault schedule.
#[test]
fn crash_under_zipfian_load_stays_in_tolerance_and_beats_strong() {
    let config = config();
    let harmony_policy = PolicySpec::Harmony(TOLERANCE);
    // Calibrate the schedule from the no-faults baseline duration so the
    // crash lands in the hot phase and the restart well before the end.
    let baseline = run(&config, &harmony_policy, FaultSchedule::empty());
    let duration = baseline.stats.duration_secs();
    assert!(duration > 0.2, "baseline too short: {duration}s");
    let schedule = || {
        FaultSchedule::empty()
            .crash_at(duration * 0.25, NodeId(1))
            .restart_at(duration * 0.6, NodeId(1))
    };
    let harmony = run(&config, &harmony_policy, schedule());
    let strong = run(&config, &PolicySpec::Strong, schedule());

    // The schedule actually fired inside both runs.
    assert_eq!(harmony.fault_counters.crashes, 1);
    assert_eq!(harmony.fault_counters.restarts, 1);
    assert_eq!(strong.fault_counters.crashes, 1);

    assert!(harmony.stats.hot_reads > 0, "the zipfian head must be read");
    let hot_stale = harmony.stats.hot_stale_fraction();
    assert!(
        hot_stale <= TOLERANCE,
        "hot-key stale rate {:.2}% exceeds the tolerated {:.0}% through the crash",
        hot_stale * 100.0,
        TOLERANCE * 100.0
    );
    assert!(
        harmony.stats.stale_fraction() <= TOLERANCE,
        "aggregate stale rate {:.2}% exceeds tolerance",
        harmony.stats.stale_fraction() * 100.0
    );
    assert!(
        harmony.throughput() > 1.15 * strong.throughput(),
        "harmony at {:.0} ops/s must clearly beat always-strong at {:.0} ops/s under the same crash",
        harmony.throughput(),
        strong.throughput()
    );
    // And the crash did not wreck throughput relative to the healthy run.
    assert!(
        harmony.throughput() > 0.8 * baseline.throughput(),
        "crash run at {:.0} ops/s collapsed against the {:.0} ops/s baseline",
        harmony.throughput(),
        baseline.throughput()
    );
    // The monitor kept producing finite estimates with a replica gone.
    assert!(harmony
        .decisions
        .iter()
        .all(|d| d.read_rate.is_finite() && d.backlog_ms.is_finite()));
}

/// Acceptance (b): after the crashed replica restarts and its hinted
/// mutations drain, the controller relaxes back to cheap reads within a
/// bounded number of monitoring ticks.
#[test]
fn read_levels_relax_within_bounded_ticks_after_restart() {
    // A stricter tolerance plus a long outage on a saturated write stage:
    // the fault window must visibly escalate, and the post-drain window
    // must relax back.
    let mut config = config();
    config.min_operations = 24_000;
    config.operations_per_thread = 1_000;
    // One service slot per node and slower mutations: the hint drain after
    // restart is a real backlog cliff, not a blip.
    config.store.node_concurrency = 2;
    config.store.write_service_ms = 0.6;
    let policy = PolicySpec::Harmony(0.05);
    let baseline = run(&config, &policy, FaultSchedule::empty());
    let duration = baseline.stats.duration_secs();
    let interval_secs = 0.05; // the figure configuration's monitoring period
    assert!(
        duration > 24.0 * interval_secs,
        "baseline too short to fit the schedule: {duration}s"
    );
    let crash_at = duration * 0.25;
    let restart_at = duration * 0.5;
    let result = run(
        &config,
        &policy,
        FaultSchedule::empty()
            .crash_at(crash_at, NodeId(1))
            .restart_at(restart_at, NodeId(1)),
    );
    assert_eq!(result.fault_counters.restarts, 1);

    // Bounded relax: within K ticks of the restart every decision is back
    // at the cheap default. K = 8 ticks ≈ 0.4 virtual seconds, generous
    // headroom over the hint-drain transient.
    let bound = SimTime::from_secs_f64(restart_at + 8.0 * interval_secs);
    let last_tick = result.decisions.last().unwrap().at;
    assert!(
        last_tick > bound,
        "run too short to observe the relax: ends at {last_tick:?}, bound {bound:?}"
    );
    let late: Vec<_> = result.decisions.iter().filter(|d| d.at > bound).collect();
    assert!(!late.is_empty());
    assert!(
        late.iter().all(|d| d.replicas_in_read == 1),
        "controller failed to relax within 8 ticks of the restart: {:?}",
        late.iter()
            .filter(|d| d.replicas_in_read > 1)
            .map(|d| (d.at, d.replicas_in_read))
            .collect::<Vec<_>>()
    );
    // And it did not sit at ONE the whole time either: somewhere in the
    // fault-and-drain window the controller escalated the default or the
    // hot set — the relax claim must not be vacuous.
    let escalated_in_window = result
        .decisions
        .iter()
        .filter(|d| d.at >= SimTime::from_secs_f64(crash_at) && d.at <= bound)
        .any(|d| d.replicas_in_read > 1 || d.hot_keys > 0 || d.diverging);
    assert!(
        escalated_in_window,
        "the fault window never moved the controller — vacuous relax claim"
    );
}

/// The monitor keeps a coherent view while replicas are down: backlog
/// dispersion is computed over live replicas only, so decisions during the
/// outage never see NaN or phantom-zero backlogs (the collector-level
/// regression lives in `harmony-monitor`; this is the end-to-end guard).
#[test]
fn monitoring_survives_the_outage_without_nan_or_phantom_zeros() {
    let config = config();
    let policy = PolicySpec::Harmony(0.20);
    let baseline = run(&config, &policy, FaultSchedule::empty());
    let duration = baseline.stats.duration_secs();
    let result = run(
        &config,
        &policy,
        FaultSchedule::empty()
            .crash_at(duration * 0.2, NodeId(2))
            .crash_at(duration * 0.25, NodeId(3))
            .restart_at(duration * 0.6, NodeId(2))
            .restart_at(duration * 0.65, NodeId(3)),
    );
    assert_eq!(result.fault_counters.crashes, 2);
    assert_eq!(result.fault_counters.restarts, 2);
    for d in &result.decisions {
        assert!(d.read_rate.is_finite() && d.read_rate >= 0.0);
        assert!(d.write_rate.is_finite() && d.write_rate >= 0.0);
        assert!(d.backlog_ms.is_finite() && d.backlog_ms >= 0.0);
        assert!(d.backlog_spread_ms.is_finite() && d.backlog_spread_ms >= 0.0);
        assert!(d.utilization.is_finite());
        assert!(d.tp_secs.is_finite() && d.tp_secs >= 0.0);
        if let Some(e) = d.estimate {
            assert!(e.is_finite() && (0.0..=1.0).contains(&e));
        }
    }
}

/// Elasticity under load: two nodes join mid-run; placement follows the ring
/// (the cache is invalidated exactly once per join — see the churn property
/// suite), bootstrap streaming keeps reads correct, and staleness stays in
/// tolerance end to end.
#[test]
fn scale_out_under_load_keeps_reads_fresh() {
    let config = config();
    let policy = PolicySpec::Harmony(TOLERANCE);
    let baseline = run(&config, &policy, FaultSchedule::empty());
    let duration = baseline.stats.duration_secs();
    let result = run(
        &config,
        &policy,
        FaultSchedule::empty()
            .join_at(duration * 0.4, 0, 0)
            .join_at(duration * 0.6, 0, 1),
    );
    assert_eq!(result.fault_counters.joins, 2);
    assert!(result.stats.hot_stale_fraction() <= TOLERANCE);
    assert!(result.stats.stale_fraction() <= TOLERANCE);
    assert_eq!(result.stats.aborted_ops, 0, "a join aborts nothing");
    // Throughput stays in the baseline's neighbourhood (scale-out is not a
    // regression event).
    assert!(
        result.throughput() > 0.8 * baseline.throughput(),
        "scale-out run at {:.0} ops/s collapsed vs the {:.0} ops/s baseline",
        result.throughput(),
        baseline.throughput()
    );
}

/// Multi-DC smoke (ISSUE 5 satellite): runs on the geo-replicated profile —
/// the one that exercises `Topology::multi_dc` and cross-DC proximity — are
/// deterministic: same seed, same decisions, same stats, twice.
#[test]
fn multi_dc_runs_are_deterministic() {
    let run = || {
        let mut workload = WorkloadSpec::workload_a(800);
        workload.field_count = 2;
        workload.field_size = 16;
        let spec = ExperimentSpec {
            workload,
            phases: vec![Phase::new(12, 6_000)],
            seed: 7,
            dual_read_measurement: false,
            hot_key_prefix: 0,
            max_virtual_secs: 600.0,
        };
        run_experiment(
            &harmony::profiles::multi_dc_with(2, 1, 3),
            StoreConfig {
                replication_factor: 3,
                node_concurrency: 4,
                read_service_ms: 0.25,
                write_service_ms: 0.4,
                client_latency_ms: 0.15,
                ..StoreConfig::default()
            },
            harmony_bench::experiments::figure_controller_config(),
            Box::new(HarmonyPolicy::new(3, 0.4)),
            spec,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.read_level_histogram, b.read_level_histogram);
    assert_eq!(a.stats.operations, b.stats.operations);
    assert_eq!(a.stats.stale_reads, b.stats.stale_reads);
    assert_eq!(a.cluster_totals, b.cluster_totals);
    // The WAN actually shaped the run: monitored latency reflects cross-DC
    // links, far above the sub-millisecond LAN of the single-DC profiles.
    assert!(
        a.decisions.iter().any(|d| d.latency_ms > 2.0),
        "multi-DC probes never saw WAN latency: {:?}",
        a.decisions.iter().map(|d| d.latency_ms).collect::<Vec<_>>()
    );
}

/// A deterministic random schedule (crash/restart Poisson process) replays
/// identically: the whole fault pipeline is seed-stable end to end.
#[test]
fn random_fault_schedules_reproduce_runs_exactly() {
    let config = config();
    let policy = PolicySpec::Harmony(TOLERANCE);
    let schedule = || {
        FaultSchedule::random(
            99,
            0.4,
            20,
            &RandomFaultConfig {
                crash_rate_per_sec: 10.0,
                mean_downtime_secs: 0.1,
                ..RandomFaultConfig::default()
            },
        )
    };
    assert!(!schedule().is_empty());
    let a = run(&config, &policy, schedule());
    let b = run(&config, &policy, schedule());
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.stats.operations, b.stats.operations);
    assert_eq!(a.stats.stale_reads, b.stats.stale_reads);
    assert_eq!(a.stats.aborted_ops, b.stats.aborted_ops);
    assert_eq!(a.cluster_totals, b.cluster_totals);
    assert_eq!(a.fault_counters, b.fault_counters);
    assert!(a.fault_counters.crashes > 0);
}

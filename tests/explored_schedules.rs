//! Regression corpus: replays every committed schedule fixture under
//! `tests/fixtures/schedules/` through the bounded model checker's replay
//! path and asserts the quiesced invariants hold.
//!
//! Each fixture is a counterexample-shaped [`harmony_check::ScheduleTrace`]:
//! a concrete delivery order plus fault injections that once threatened (or
//! still probes) an invariant. Keeping them replayable pins the protocol's
//! behaviour on exactly those schedules — if hinted handoff, partition
//! healing, or coordinator failover regresses, the corpus fails before the
//! (much slower) exhaustive exploration does.
//!
//! Add fixtures by hand, or let a violating exploration print one and commit
//! it; regenerate the seed set with `REGEN_FIXTURES=1 cargo test -p
//! harmony-check`.

use harmony_check::trace::{self, ScheduleTrace};
use harmony_store::prelude::*;

fn fixtures() -> Vec<(String, ScheduleTrace)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/schedules");
    let mut fixtures: Vec<(String, ScheduleTrace)> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("fixture dir {dir:?} unreadable: {e}"))
        .map(|entry| entry.expect("fixture dir entry").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "json"))
        .map(|path| {
            let json = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("fixture {path:?} unreadable: {e}"));
            let trace: ScheduleTrace = serde_json::from_str(&json)
                .unwrap_or_else(|e| panic!("fixture {path:?} does not parse: {e}"));
            (path.display().to_string(), trace)
        })
        .collect();
    fixtures.sort_by(|a, b| a.0.cmp(&b.0));
    fixtures
}

/// Every committed fixture replays without violating any quiesced invariant.
#[test]
fn every_committed_schedule_replays_clean() {
    let fixtures = fixtures();
    assert!(
        fixtures.len() >= 3,
        "the seed corpus has three fixtures; found {}",
        fixtures.len()
    );
    for (path, trace) in &fixtures {
        let (_machine, violations) = trace::replay(trace).unwrap_or_else(|e| panic!("{path}: {e}"));
        assert!(
            violations.is_empty(),
            "{path} ({}): invariants violated on replay: {violations:?}",
            trace.description
        );
    }
}

/// The ack-then-coordinator-crash fixture really does what its name says:
/// after replay the first write's acked timestamp survives on the replicas
/// even though its coordinator died mid-schedule.
#[test]
fn coordinator_crash_fixture_leaves_the_ack_durable() {
    let (_, trace) = fixtures()
        .into_iter()
        .find(|(path, _)| path.ends_with("ack_then_coordinator_crash.json"))
        .expect("seed fixture present");
    let (machine, violations) = trace::replay(&trace).expect("fixture replays");
    assert!(violations.is_empty(), "{violations:?}");
    let cluster = machine.cluster();
    let key = cluster.key_id("k").expect("scenario key interned");
    assert!(
        cluster.latest_acked_ts(key) > Timestamp::ZERO,
        "the schedule must actually reach a client ack before the crash"
    );
    assert!(
        cluster.totals().writes_completed >= 1,
        "at least the pre-crash write must have completed"
    );
}

/// The hinted-handoff fixture exercises the hint path for real: the same
/// schedule replayed with hinted handoff disabled loses the restarted
/// replica's copy — proof the fixture covers the machinery it names.
#[test]
fn hinted_handoff_fixture_depends_on_hints() {
    let (_, trace) = fixtures()
        .into_iter()
        .find(|(path, _)| path.ends_with("restart_during_hinted_handoff.json"))
        .expect("seed fixture present");
    let (machine, violations) = trace::replay(&trace).expect("fixture replays");
    assert!(violations.is_empty(), "{violations:?}");
    // The replayed schedule must have driven writes through the outage
    // window; otherwise the fixture is not testing handoff at all.
    assert!(machine.cluster().totals().writes_completed >= 1);
}

//! Cross-crate integration tests of the store's consistency guarantees —
//! the quorum-intersection properties of §II.B exercised end to end through
//! the simulated cluster, including property-based tests over random
//! interleavings of reads and writes.

use harmony::prelude::*;
use harmony::sim::rng::RngFactory;
use harmony::sim::topology::{NetworkModel, Topology};
use proptest::prelude::*;

fn cluster(latency_ms: f64, rf: usize, seed: u64) -> (Cluster, Simulation<StoreEvent>) {
    let topology = Topology::single_dc(2, 4);
    let network = NetworkModel::uniform(Latency::constant_ms(latency_ms));
    let config = StoreConfig {
        replication_factor: rf,
        ..StoreConfig::default()
    };
    (
        Cluster::new(config, topology, network, RngFactory::new(seed)),
        Simulation::new(seed),
    )
}

fn drain(cluster: &mut Cluster, sim: &mut Simulation<StoreEvent>) -> Vec<Completion> {
    let mut out = Vec::new();
    while let Some((_, ev)) = sim.next() {
        if let Some(c) = cluster.handle(ev, sim) {
            out.push(c);
        }
    }
    out
}

/// R + W > N ⇒ the read observes the latest acknowledged write, for every
/// (read level, write level) combination that forms an intersecting quorum.
#[test]
fn intersecting_quorums_always_read_the_latest_write() {
    let combos = [
        (ConsistencyLevel::Quorum, ConsistencyLevel::Quorum),
        (ConsistencyLevel::All, ConsistencyLevel::One),
        (ConsistencyLevel::One, ConsistencyLevel::All),
        (ConsistencyLevel::All, ConsistencyLevel::All),
        (ConsistencyLevel::Replicas(4), ConsistencyLevel::Two),
    ];
    for (read_level, write_level) in combos {
        assert!(read_level.read_your_writes(write_level, 5));
        let (mut cluster, mut sim) = cluster(1.0, 5, 99);
        for i in 0..30u64 {
            cluster.submit_write(
                "account",
                Mutation::single("balance", format!("{i}").into_bytes()),
                write_level,
                &mut sim,
            );
            let _ = drain(&mut cluster, &mut sim);
            cluster.submit_read("account", read_level, &mut sim);
            let read = drain(&mut cluster, &mut sim)
                .into_iter()
                .find(|c| c.kind == OpKind::Read)
                .unwrap();
            assert!(
                !read.stale,
                "{read_level} read after {write_level} write returned stale data at iteration {i}"
            );
        }
    }
}

/// Reads at ALL can never be stale regardless of the write level, even with
/// writes racing ahead of propagation.
#[test]
fn all_reads_are_never_stale_under_racing_writes() {
    let (mut cluster, mut sim) = cluster(2.0, 5, 7);
    for i in 0..200u64 {
        cluster.submit_write(
            "hot",
            Mutation::single("f", format!("{i}").into_bytes()),
            ConsistencyLevel::One,
            &mut sim,
        );
        cluster.submit_read("hot", ConsistencyLevel::All, &mut sim);
    }
    let completions = drain(&mut cluster, &mut sim);
    assert!(completions
        .iter()
        .filter(|c| c.kind == OpKind::Read)
        .all(|c| !c.stale));
}

/// The Harmony policy with a zero tolerated stale-read rate escalates to
/// reading every replica as soon as the monitor observes load, so the vast
/// majority of reads run at level ALL and overall staleness stays marginal.
/// (Harmony is reactive: reads issued before the first loaded monitoring
/// sweep still run at ONE, which is why the count is "marginal", not zero —
/// the same caveat applies to the paper's prototype.)
#[test]
fn zero_tolerance_harmony_escalates_to_all_replicas() {
    let profile = harmony::profiles::grid5000_with_nodes(10);
    let mut workload = WorkloadSpec::workload_a(1_000);
    workload.field_count = 2;
    workload.field_size = 16;
    let spec = ExperimentSpec {
        workload,
        phases: vec![Phase::new(40, 15_000)],
        seed: 11,
        dual_read_measurement: false,
        hot_key_prefix: 0,
        max_virtual_secs: 600.0,
    };
    let controller = ControllerConfig {
        monitor: harmony::monitor::collector::MonitorConfig {
            interval_secs: 0.05,
            ..Default::default()
        },
        ..ControllerConfig::default()
    };
    let store = StoreConfig {
        replication_factor: 5,
        write_service_ms: 0.4,
        ..StoreConfig::default()
    };
    let result = run_experiment(
        &profile,
        store,
        controller,
        Box::new(HarmonyPolicy::new(5, 0.0)),
        spec,
    );
    let at_all = result.read_level_histogram.get(&5).copied().unwrap_or(0);
    let total_reads: u64 = result.read_level_histogram.values().sum();
    assert!(
        at_all as f64 / total_reads as f64 > 0.6,
        "most reads should run at ALL once the controller reacts: {:?}",
        result.read_level_histogram
    );
    assert!(
        result.stats.stale_fraction() < 0.05,
        "staleness should be marginal ({} of {} reads)",
        result.stats.stale_reads,
        result.stats.reads
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Quorum writes followed by quorum reads are never stale, for arbitrary
    /// interleavings of keys and payload sizes.
    #[test]
    fn quorum_quorum_never_stale(
        keys in prop::collection::vec("[a-z]{1,8}", 1..6),
        rounds in 1usize..15,
        seed in 0u64..1_000,
    ) {
        let (mut cluster, mut sim) = cluster(1.5, 5, seed);
        for round in 0..rounds {
            for (k, key) in keys.iter().enumerate() {
                cluster.submit_write(
                    key,
                    Mutation::single("f", format!("{round}-{k}").into_bytes()),
                    ConsistencyLevel::Quorum,
                    &mut sim,
                );
            }
            let _ = drain(&mut cluster, &mut sim);
            for key in &keys {
                cluster.submit_read(key, ConsistencyLevel::Quorum, &mut sim);
            }
            let comps = drain(&mut cluster, &mut sim);
            for c in comps.iter().filter(|c| c.kind == OpKind::Read) {
                prop_assert!(!c.stale, "round {round}: stale quorum read of {}", c.key);
            }
        }
    }

    /// Replica sets always have exactly `min(RF, nodes)` distinct members and
    /// are deterministic, for arbitrary keys.
    #[test]
    fn replica_sets_are_stable(key in "[a-zA-Z0-9]{1,16}", rf in 1usize..8) {
        let (cluster, _) = cluster(0.5, rf.min(5), 1);
        let a = cluster.replicas_for(&key);
        let b = cluster.replicas_for(&key);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), rf.min(5).min(8));
        let mut dedup = a.clone();
        dedup.sort_by_key(|n| n.0);
        dedup.dedup();
        prop_assert_eq!(dedup.len(), a.len());
    }
}

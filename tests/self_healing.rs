//! Self-healing claims (ISSUE 9 acceptance): after a network partition heals,
//! the cluster converges every serving replica *without serving a single
//! read* — hinted handoff replays what it retained, and the anti-entropy
//! digest exchange closes whatever the bounded hint buffer had to evict.
//! Client-side retries convert the partition's unavailability aborts, and
//! arming the repair knobs in the full YCSB stack stays deterministic per
//! seed while healing mid-run divergence.

use harmony::chaos::FaultEvent;
use harmony::prelude::*;
use harmony::sim::latency::Latency;
use harmony::sim::rng::RngFactory;
use harmony::sim::topology::{NetworkModel, NodeId, Topology};
use harmony::store::cluster::Cluster;
use harmony::store::config::StoreConfig;
use harmony::store::consistency::ConsistencyLevel;
use harmony::store::messages::StoreEvent;
use harmony::store::types::{Mutation, Timestamp};
use harmony_sim::engine::Simulation;

/// Pumps the simulation dry, discarding completions.
fn drain(cluster: &mut Cluster, sim: &mut Simulation<StoreEvent>) {
    while let Some((_, event)) = sim.next() {
        let _ = cluster.handle(event, sim);
    }
}

/// A six-node cluster with a deliberately tiny hint buffer and no background
/// read repair, so the only post-heal convergence paths are hint replay (of
/// what little the cap retained) and anti-entropy.
fn small_cluster() -> (Cluster, Simulation<StoreEvent>) {
    let topology = Topology::single_dc(2, 3);
    let network = NetworkModel::uniform(Latency::constant_ms(0.2));
    let config = StoreConfig {
        replication_factor: 3,
        hint_cap_per_origin: 1,
        background_read_repair_chance: 0.0,
        ..StoreConfig::default()
    };
    let cluster = Cluster::new(config, topology, network, RngFactory::new(7));
    let sim: Simulation<StoreEvent> = Simulation::new(7);
    (cluster, sim)
}

/// The tentpole claim, store level: partition a node away, hammer writes
/// until the bounded hint buffer overflows (so hint replay *cannot* converge
/// the cluster on its own), heal, and let anti-entropy close the rest — with
/// zero read traffic end to end.
#[test]
fn healed_partition_converges_via_anti_entropy_with_zero_read_traffic() {
    let (mut cluster, mut sim) = small_cluster();
    const KEYS: u64 = 12;
    for i in 0..KEYS {
        cluster.load_direct(
            &format!("user{i}"),
            &Mutation::single("f", b"v0".to_vec()),
            Timestamp(i + 1),
        );
    }
    // Cut one node off from everyone else.
    let victim = NodeId(0);
    let rest: Vec<NodeId> = (1..cluster.node_count() as u32).map(NodeId).collect();
    cluster.apply_fault(
        &FaultEvent::Partition {
            groups: vec![vec![victim], rest],
        },
        &mut sim,
    );
    // Several rounds of writes across every key. Writes reaching the victim's
    // keys from the majority side become hints; the per-origin cap of one
    // keeps only each coordinator's newest hint and evicts the rest, so after
    // the heal some keys can only converge through anti-entropy.
    for round in 0..4u64 {
        for i in 0..KEYS {
            cluster.submit_write(
                &format!("user{i}"),
                Mutation::single("f", format!("r{round}").into_bytes()),
                ConsistencyLevel::One,
                &mut sim,
            );
            drain(&mut cluster, &mut sim);
        }
    }
    assert!(
        cluster.totals().hints_evicted > 0,
        "the bounded hint buffer must overflow for this scenario to bite: {:?}",
        cluster.totals()
    );
    assert!(!cluster.all_replicas_converged());

    // Heal; retained hints replay immediately, but the evicted ones are gone
    // for good — replay alone must leave the cluster divergent.
    cluster.apply_fault(&FaultEvent::HealPartition, &mut sim);
    drain(&mut cluster, &mut sim);
    assert!(
        !cluster.all_replicas_converged(),
        "hint replay alone must not converge an overflowed buffer"
    );

    // Anti-entropy closes the gap with zero read traffic: no client read is
    // ever submitted, and no replica serves a read during repair.
    let reads_before: u64 = cluster.node_counters().iter().map(|c| c.reads).sum();
    for _ in 0..2 * cluster.node_count() {
        cluster.run_anti_entropy_round(&mut sim);
        drain(&mut cluster, &mut sim);
    }
    assert!(
        cluster.all_replicas_converged(),
        "anti-entropy must converge every serving replica after the heal"
    );
    let reads_after: u64 = cluster.node_counters().iter().map(|c| c.reads).sum();
    assert_eq!(reads_before, reads_after, "repair must not serve reads");
    let totals = cluster.totals();
    assert_eq!(totals.reads_submitted, 0);
    assert!(totals.ae_rounds >= 1);
    assert!(totals.ae_rows_streamed >= 1, "{totals:?}");
}

/// The CI-scaled full-stack configuration shared by the runner-level tests.
fn spec(ops: u64) -> ExperimentSpec {
    let mut workload = WorkloadSpec::workload_a(500);
    workload.field_count = 2;
    workload.field_size = 16;
    ExperimentSpec {
        workload,
        phases: vec![harmony::ycsb::runner::Phase::new(8, ops)],
        seed: 20_120_920,
        dual_read_measurement: false,
        hot_key_prefix: 0,
        max_virtual_secs: 600.0,
    }
}

fn store_config(anti_entropy_interval_secs: f64) -> StoreConfig {
    StoreConfig {
        replication_factor: 3,
        anti_entropy_interval_secs,
        ..StoreConfig::default()
    }
}

/// Full stack: a partition-then-heal schedule with the anti-entropy interval
/// armed runs repair rounds mid-experiment, streams rows to close the
/// partition's divergence, and stays deterministic per seed.
#[test]
fn armed_anti_entropy_heals_mid_run_and_stays_deterministic() {
    let profile = harmony::profiles::grid5000_with_nodes(6);
    let schedule = || {
        FaultSchedule::empty()
            .partition_at(0.05, vec![vec![NodeId(0), NodeId(1)]])
            .heal_at(0.4)
    };
    let run_once = || {
        run_experiment_with_retry(
            &profile,
            store_config(0.05),
            ControllerConfig::default(),
            Box::new(StaticPolicy::Eventual),
            spec(4_000),
            schedule(),
            RetryPolicy {
                max_attempts: 4,
                base_backoff_ms: 0.5,
                max_backoff_ms: 8.0,
                hedge_after_ms: 0.0,
            },
        )
    };
    let healed = run_once();
    assert_eq!(healed.fault_counters.partitions, 1);
    assert_eq!(healed.fault_counters.heals, 1);
    assert!(
        healed.cluster_totals.ae_rounds > 0,
        "the armed interval must actually run repair rounds: {:?}",
        healed.cluster_totals
    );
    assert!(
        healed.cluster_totals.ae_rows_streamed > 0,
        "the healed partition's divergence must be streamed shut: {:?}",
        healed.cluster_totals
    );
    // Determinism: the whole self-healing stack replays exactly per seed.
    let again = run_once();
    assert_eq!(again.stats.operations, healed.stats.operations);
    assert_eq!(again.stats.retries, healed.stats.retries);
    assert_eq!(again.stats.aborted_ops, healed.stats.aborted_ops);
    assert_eq!(again.cluster_totals, healed.cluster_totals);
    assert_eq!(again.read_level_histogram, healed.read_level_histogram);
}

/// The disabled knobs are free: the same chaos schedule with the repair
/// interval at zero and the retry policy at default never runs a repair
/// round, and matches the plain fault-aware entry point byte for byte.
#[test]
fn disarmed_repair_knobs_are_byte_identical_under_chaos() {
    let profile = harmony::profiles::grid5000_with_nodes(6);
    let schedule = || {
        FaultSchedule::empty()
            .partition_at(0.05, vec![vec![NodeId(0), NodeId(1)]])
            .heal_at(0.4)
    };
    let plain = run_experiment_with_faults(
        &profile,
        store_config(0.0),
        ControllerConfig::default(),
        Box::new(StaticPolicy::Eventual),
        spec(2_000),
        schedule(),
    );
    let disarmed = run_experiment_with_retry(
        &profile,
        store_config(0.0),
        ControllerConfig::default(),
        Box::new(StaticPolicy::Eventual),
        spec(2_000),
        schedule(),
        RetryPolicy::default(),
    );
    assert_eq!(plain.cluster_totals.ae_rounds, 0);
    assert_eq!(disarmed.cluster_totals.ae_rounds, 0);
    assert_eq!(plain.stats.operations, disarmed.stats.operations);
    assert_eq!(plain.stats.aborted_ops, disarmed.stats.aborted_ops);
    assert_eq!(plain.cluster_totals, disarmed.cluster_totals);
    assert_eq!(plain.decisions, disarmed.decisions);
    assert_eq!(plain.read_level_histogram, disarmed.read_level_histogram);
    assert_eq!(disarmed.stats.retries, 0);
    assert_eq!(disarmed.stats.hedged_reads, 0);
}

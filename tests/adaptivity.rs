//! Integration tests of the adaptive behaviour itself: the estimate timeline
//! (Figure 4) and the controller's reaction to workload and latency changes,
//! exercised through the full monitoring → model → policy → store loop.

use harmony::adaptive::controller::AdaptiveController;
use harmony::monitor::probe::MockProbe;
use harmony::prelude::*;

fn controller_config() -> ControllerConfig {
    // Shared with the figure binaries and the paper-claim tests, so a future
    // recalibration cannot silently diverge between them.
    harmony_bench::experiments::figure_controller_config()
}

fn store_config() -> StoreConfig {
    StoreConfig {
        replication_factor: 5,
        write_service_ms: 0.4,
        ..StoreConfig::default()
    }
}

fn run_phased(workload: WorkloadSpec, phases: Vec<Phase>) -> ExperimentResult {
    let spec = ExperimentSpec {
        workload,
        phases,
        seed: 31,
        dual_read_measurement: false,
        hot_key_prefix: 0,
        max_virtual_secs: 600.0,
    };
    run_experiment(
        &harmony::profiles::grid5000_with_nodes(10),
        store_config(),
        controller_config(),
        // 100% tolerance: observe the estimator without it changing the level.
        Box::new(HarmonyPolicy::new(5, 1.0)),
        spec,
    )
}

fn small_workload_a() -> WorkloadSpec {
    let mut w = WorkloadSpec::workload_a(2_000);
    w.field_count = 2;
    w.field_size = 32;
    w
}

fn small_workload_b() -> WorkloadSpec {
    let mut w = WorkloadSpec::workload_b(2_000);
    w.field_count = 2;
    w.field_size = 32;
    w
}

fn mean_estimate(result: &ExperimentResult) -> f64 {
    let estimates: Vec<f64> = result
        .decisions
        .iter()
        .filter_map(|d| d.estimate)
        .filter(|e| *e > 0.0)
        .collect();
    if estimates.is_empty() {
        0.0
    } else {
        estimates.iter().sum::<f64>() / estimates.len() as f64
    }
}

/// Figure 4(a): the update-heavy workload A causes far more *actual* stale
/// reads than the read-heavy workload B at the same concurrency — the paper's
/// observation that "the number of updates plays a very important role in
/// causing stale reads". (The estimate-ordering property of the closed-form
/// model itself is covered by the property tests in `harmony-model`, which
/// compare the two mixes at matched total access rates.)
#[test]
fn workload_a_causes_more_staleness_than_workload_b() {
    let threads = 50;
    let ops = 20_000;
    let a = run_phased(small_workload_a(), vec![Phase::new(threads, ops)]);
    let b = run_phased(small_workload_b(), vec![Phase::new(threads, ops)]);
    assert!(
        mean_estimate(&a) > 0.0,
        "workload A must produce a non-zero estimate"
    );
    assert!(
        a.stats.stale_reads > b.stats.stale_reads,
        "workload A stale reads ({}) should exceed workload B ({})",
        a.stats.stale_reads,
        b.stats.stale_reads
    );
    // The write rate the monitor observed is far higher under A than B.
    let peak_writes = |r: &ExperimentResult| {
        r.decisions
            .iter()
            .map(|d| d.write_rate)
            .fold(0.0f64, f64::max)
    };
    assert!(peak_writes(&a) > 3.0 * peak_writes(&b));
}

/// Figure 4(a): stepping the thread count down lowers the access rates and
/// with them the stale-read estimate.
#[test]
fn estimate_decreases_as_threads_step_down() {
    let result = run_phased(
        small_workload_a(),
        vec![
            Phase::new(80, 20_000),
            Phase::new(30, 10_000),
            Phase::new(4, 3_000),
        ],
    );
    // Mean estimate per phase, sliced by the phase end times.
    let mut per_phase = Vec::new();
    let mut start = 0.0;
    for pr in &result.phase_results {
        let end = pr.stats.ended_at.as_secs_f64();
        let estimates: Vec<f64> = result
            .decisions
            .iter()
            .filter(|d| d.at.as_secs_f64() > start && d.at.as_secs_f64() <= end)
            .filter_map(|d| d.estimate)
            .collect();
        let mean = if estimates.is_empty() {
            0.0
        } else {
            estimates.iter().sum::<f64>() / estimates.len() as f64
        };
        per_phase.push(mean);
        start = end;
    }
    assert_eq!(per_phase.len(), 3);
    assert!(
        per_phase[0] > per_phase[2],
        "estimate at 80 threads ({:.3}) should exceed estimate at 4 threads ({:.3})",
        per_phase[0],
        per_phase[2]
    );
}

/// Figure 4(b): a latency spike dominates the estimate and drives the chosen
/// consistency level up; recovery brings it back down.
#[test]
fn latency_spike_raises_then_relaxes_the_level() {
    let mut controller = AdaptiveController::new(
        ControllerConfig {
            monitor: harmony::monitor::collector::MonitorConfig {
                estimator: harmony::monitor::collector::EstimatorKind::Ewma(1.0),
                ..Default::default()
            },
            ..ControllerConfig::default()
        },
        5,
        Box::new(HarmonyPolicy::new(5, 0.4)),
    );
    let mut probe = MockProbe {
        nodes: 20,
        latency_ms: 0.3,
        ..MockProbe::default()
    };
    // Steady moderate load, low latency: level stays at ONE.
    let mut steady_level = ConsistencyLevel::All;
    for s in 1..=5u64 {
        probe.reads += 200;
        probe.writes += 100;
        steady_level = controller.tick(SimTime::from_secs(s), &probe);
    }
    assert_eq!(steady_level, ConsistencyLevel::One);
    // Latency spike (EC2-style): estimate saturates, level rises.
    probe.latency_ms = 30.0;
    probe.reads += 200;
    probe.writes += 100;
    let spiked = controller.tick(SimTime::from_secs(6), &probe);
    assert!(
        spiked.required_acks(5) > 1,
        "level should rise during the spike"
    );
    // Recovery.
    probe.latency_ms = 0.3;
    probe.reads += 200;
    probe.writes += 100;
    let recovered = controller.tick(SimTime::from_secs(7), &probe);
    assert_eq!(recovered, ConsistencyLevel::One);
}

/// The decision records expose everything Figure 4 needs: timestamps, rates,
/// latency, estimate and the chosen replica count, in chronological order.
#[test]
fn decision_timeline_is_complete_and_ordered() {
    let result = run_phased(small_workload_a(), vec![Phase::new(40, 15_000)]);
    assert!(result.decisions.len() >= 3);
    assert!(result.decisions.windows(2).all(|w| w[0].at <= w[1].at));
    assert!(result.decisions.iter().all(|d| d.estimate.is_some()));
    assert!(result
        .decisions
        .iter()
        .any(|d| d.read_rate > 0.0 && d.write_rate > 0.0));
    assert!(result
        .decisions
        .iter()
        .all(|d| d.latency_ms >= 0.0 && d.tp_secs >= 0.0));
}

/// The dual-read measurement of §V.F perturbs the system (every read issues a
/// second, strong read) — throughput with measurement enabled must not exceed
/// the unperturbed run, mirroring the paper's caveat.
#[test]
fn dual_read_measurement_perturbs_throughput() {
    let spec_base = ExperimentSpec {
        workload: small_workload_a(),
        phases: vec![Phase::new(30, 10_000)],
        seed: 5,
        dual_read_measurement: false,
        hot_key_prefix: 0,
        max_virtual_secs: 600.0,
    };
    let mut spec_measured = spec_base.clone();
    spec_measured.dual_read_measurement = true;
    let profile = harmony::profiles::grid5000_with_nodes(10);
    let base = run_experiment(
        &profile,
        store_config(),
        controller_config(),
        Box::new(StaticPolicy::Eventual),
        spec_base,
    );
    let measured = run_experiment(
        &profile,
        store_config(),
        controller_config(),
        Box::new(StaticPolicy::Eventual),
        spec_measured,
    );
    assert!(measured.throughput() <= base.throughput());
}

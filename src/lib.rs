//! # Harmony
//!
//! A Rust reproduction of **"Harmony: Towards Automated Self-Adaptive
//! Consistency in Cloud Storage"** (Chihoub, Ibrahim, Antoniu, Pérez — IEEE
//! CLUSTER 2012).
//!
//! Harmony is a thin control layer for quorum-replicated storage systems that
//! tunes the consistency level of *read* operations at run time. It estimates
//! the probability that a read returns stale data from the monitored access
//! rates and network latency, compares it with the stale-read rate the
//! application is willing to tolerate, and — only when needed — raises the
//! number of replicas involved in subsequent reads just enough to bring the
//! estimate back under the tolerance.
//!
//! This workspace contains everything needed to reproduce the paper end to
//! end, including the substrates the original work relied on:
//!
//! | Crate | Role |
//! |-------|------|
//! | [`harmony_model`] | the stale-read probability model (Eq. 1-8) and rate estimators |
//! | [`harmony_sim`] | deterministic discrete-event kernel, latency models, Grid'5000/EC2/multi-DC profiles |
//! | [`harmony_chaos`] | deterministic fault injection and elasticity: typed fault schedules (crashes, partitions, slow replicas, node churn) and the cluster-side fault state |
//! | [`harmony_store`] | a Cassandra-like quorum-replicated key-value store (ring, placement, commit log/memtable/SSTables, coordinator, read repair) |
//! | [`harmony_monitor`] | the monitoring module (counter/latency collection, rate smoothing) |
//! | [`harmony_adaptive`] | the adaptive controller plus the static baselines (eventual, strong, quorum) |
//! | [`harmony_ycsb`] | YCSB-style workloads, closed-loop clients, statistics and staleness measurement |
//! | [`harmony_live`] | a real-threaded replicated store showing the controller in wall-clock time |
//!
//! The `harmony-bench` crate regenerates every figure of the paper's
//! evaluation; see `EXPERIMENTS.md` at the repository root.
//!
//! ## Quick start
//!
//! ```
//! use harmony::prelude::*;
//!
//! // The paper's main scenario: YCSB workload A on a Grid'5000-like cluster,
//! // RF = 5, Harmony tolerating 20% stale reads.
//! let profile = harmony::profiles::grid5000_with_nodes(6);
//! let mut workload = WorkloadSpec::workload_a(200);
//! workload.field_count = 2;
//! workload.field_size = 16;
//! let spec = ExperimentSpec::single_phase(workload, 8, 1_000);
//!
//! let result = run_experiment(
//!     &profile,
//!     StoreConfig { replication_factor: 3, ..StoreConfig::default() },
//!     ControllerConfig::default(),
//!     Box::new(HarmonyPolicy::new(3, 0.20)),
//!     spec,
//! );
//! println!("throughput: {:.0} ops/s, stale reads: {}",
//!          result.throughput(), result.stale_reads());
//! assert!(result.stats.operations >= 1_000);
//! ```

pub use harmony_adaptive as adaptive;
pub use harmony_chaos as chaos;
pub use harmony_live as live;
pub use harmony_model as model;
pub use harmony_monitor as monitor;
pub use harmony_obs as obs;
pub use harmony_sim as sim;
pub use harmony_store as store;
pub use harmony_ycsb as ycsb;

/// Cluster profiles reproducing the paper's two testbeds.
pub use harmony_sim::profiles;

/// One-stop imports for the most common experiment workflow.
pub mod prelude {
    pub use harmony_adaptive::config::{ControllerConfig, PerKeySplitConfig};
    pub use harmony_adaptive::controller::{AdaptiveController, HotKeyDecision};
    pub use harmony_adaptive::policy::{
        ConsistencyPolicy, HarmonyPolicy, PolicyContext, StaticPolicy,
    };
    pub use harmony_model::decision::{decide, decide_with_estimate, ConsistencyDecision};
    pub use harmony_model::perkey::{KeyLoad, PerKeyModel};
    pub use harmony_model::queueing::{
        MG1Queue, ProactiveConfig, QueueingModel, StalenessEstimate, WriteStageObservation,
    };
    pub use harmony_model::staleness::{PropagationModel, StaleReadModel};
    pub use harmony_monitor::collector::{HotKeyStat, Monitor, MonitorConfig};
    pub use harmony_monitor::heavy_hitters::{HotKeyTracker, SpaceSavingSketch};
    pub use harmony_sim::profiles::{ec2, grid5000, ClusterProfile};
    pub use harmony_sim::{Latency, SimTime, Simulation};
    pub use harmony_store::prelude::*;
    pub use harmony_ycsb::prelude::*;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_are_usable_together() {
        let model = StaleReadModel::new(5);
        let p = model.stale_probability(1000.0, 800.0, 0.001);
        assert!(p > 0.0);
        let policy = HarmonyPolicy::new(5, 0.2);
        assert_eq!(policy.name(), "harmony-20");
        let profile = grid5000();
        assert_eq!(profile.replication_factor, 5);
    }
}

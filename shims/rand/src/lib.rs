//! Offline stand-in for the `rand` crate (0.8-style API surface).
//!
//! Implements exactly the subset Harmony uses: `rngs::StdRng` (a
//! xoshiro256++ generator seeded via SplitMix64), `SeedableRng::seed_from_u64`,
//! and the `Rng` extension trait with `gen`, `gen_range`, `gen_bool` and
//! `sample`. Deterministic for a given seed, which is exactly what the
//! simulator and the test-suite need.

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the unit interval / full integer range via
/// `Rng::gen`.
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64, far below
                // anything the simulator can observe.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as Standard>::from_rng(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let unit = <$t as Standard>::from_rng(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// The user-facing extension trait.
pub trait Rng: RngCore {
    /// Samples a value of an inferred type (`rng.gen::<f64>()`).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        <f64 as Standard>::from_rng(self) < p
    }

    /// Samples from a distribution (mirror of `rand::Rng::sample`).
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A distribution over values of type `T` (re-exported by `rand_distr`).
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

pub mod distributions {
    pub use crate::Distribution;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the shim's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
        for _ in 0..1_000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_mean() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac = {frac}");
    }
}

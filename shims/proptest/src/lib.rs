//! Offline stand-in for `proptest`: a miniature property-testing engine
//! covering the subset the workspace uses — the `proptest!` macro with
//! optional `#![proptest_config(...)]`, range and tuple strategies,
//! `prop::collection::vec`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! No shrinking: a failing case panics with the sampled inputs so it can be
//! reproduced (sampling is fully deterministic per test name).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

pub mod test_runner {
    use super::*;

    /// Deterministic per-test RNG: the seed is derived from the test name.
    pub struct TestRng {
        pub(crate) rng: StdRng,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name gives a stable per-property seed.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng {
                rng: StdRng::seed_from_u64(h),
            }
        }
    }
}

use test_runner::TestRng;

/// Generates values of `Self::Value` for property tests.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// String strategies from a regex-like pattern, mirroring proptest's
/// `impl Strategy for &str`. Supports the subset the tests use: literal
/// characters, `[a-z0-9_]`-style classes (with ranges), and `{m}` / `{m,n}`
/// repetition applied to the preceding class or literal.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let tokens = parse_pattern(self);
        let mut out = String::new();
        for (choices, min, max) in &tokens {
            let n = if min == max {
                *min
            } else {
                rng.rng.gen_range(*min..=*max)
            };
            for _ in 0..n {
                let idx = rng.rng.gen_range(0..choices.len());
                out.push(choices[idx]);
            }
        }
        out
    }
}

/// Parses a pattern into (choices, min_repeats, max_repeats) runs.
fn parse_pattern(pattern: &str) -> Vec<(Vec<char>, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut tokens: Vec<(Vec<char>, usize, usize)> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated class in pattern `{pattern}`"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' => {
                i += 1;
                let c = chars
                    .get(i)
                    .copied()
                    .unwrap_or_else(|| panic!("dangling escape in pattern `{pattern}`"));
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (mut min, mut max) = (1usize, 1usize);
        if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern `{pattern}`"));
            let body: String = chars[i + 1..close].iter().collect();
            if let Some((lo, hi)) = body.split_once(',') {
                min = lo.trim().parse().expect("bad quantifier min");
                max = hi.trim().parse().expect("bad quantifier max");
            } else {
                min = body.trim().parse().expect("bad quantifier");
                max = min;
            }
            i = close + 1;
        }
        assert!(
            !choices.is_empty() && min <= max,
            "degenerate pattern `{pattern}`"
        );
        tokens.push((choices, min, max));
    }
    tokens
}

/// A strategy producing one fixed value (mirror of `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec`s of a given element strategy and length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "empty length range for collection::vec");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a test that samples `cases` inputs and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    let __inputs = format!(
                        concat!("[" $(, stringify!($arg), " = {:?} ")*, "]"),
                        $(&$arg),*
                    );
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            __case + 1,
                            __cfg.cases,
                            __msg,
                            __inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("prop_assert!({}) failed", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the current property case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            return ::std::result::Result::Err(format!(
                "prop_assert_eq! failed: {:?} != {:?}",
                __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Everything a `proptest!` user needs in scope.
pub mod prelude {
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};

    /// Namespace mirror so `prop::collection::vec(...)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f), "f = {f}");
        }

        #[test]
        fn vec_strategy_respects_len(xs in prop::collection::vec(0u32..5, 1..9)) {
            prop_assert!(!xs.is_empty() && xs.len() < 9);
            for x in xs {
                prop_assert!(x < 5);
            }
        }

        #[test]
        fn string_pattern_strategy(key in "[a-z]{1,8}", id in "u-[0-9]{3}") {
            prop_assert!(!key.is_empty() && key.len() <= 8);
            prop_assert!(key.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(id.starts_with("u-") && id.len() == 5, "id = {id}");
        }

        #[test]
        fn tuple_strategy(pair in (0u8..4, 10i64..20)) {
            prop_assert!(pair.0 < 4);
            prop_assert!((10..20).contains(&pair.1));
            prop_assert_eq!(pair.0 as i64 + pair.1, pair.1 + pair.0 as i64);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_form_compiles(x in 0u8..2) {
            prop_assert!(x < 2);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failure_reports_inputs() {
        proptest! {
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}

//! Offline stand-in for `criterion`: measures each benchmark with a short
//! calibrated loop and prints a `name ... time/iter` line. No statistics,
//! plots or CLI — just enough for `cargo bench` to produce useful numbers
//! and for `cargo bench --no-run` to verify the targets compile.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// How batched inputs are grouped; only a hint in this shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumIterations(u64),
}

/// Drives one benchmark's timing loop.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    /// Best (minimum) per-iteration time over all samples, in nanoseconds.
    best_ns_per_iter: f64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            iters_per_sample: 0,
            samples,
            best_ns_per_iter: f64::INFINITY,
        }
    }

    fn record(&mut self, elapsed: Duration, iters: u64) {
        if iters > 0 {
            let per_iter = elapsed.as_nanos() as f64 / iters as f64;
            if per_iter < self.best_ns_per_iter {
                self.best_ns_per_iter = per_iter;
            }
        }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate so one sample lasts roughly 2 ms.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(2);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        self.iters_per_sample = iters;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.record(start.elapsed(), iters);
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let iters = 16u64;
        self.iters_per_sample = iters;
        for _ in 0..self.samples {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.record(start.elapsed(), iters);
        }
    }

    /// Like [`Bencher::iter_batched`] but passes the input by mutable reference.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let iters = 16u64;
        self.iters_per_sample = iters;
        for _ in 0..self.samples {
            let mut inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in &mut inputs {
                black_box(routine(input));
            }
            self.record(start.elapsed(), iters);
        }
    }
}

fn report(name: &str, bencher: &Bencher) {
    let ns = bencher.best_ns_per_iter;
    let formatted = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    };
    println!(
        "{name:<50} {formatted}/iter  ({} iters x {} samples)",
        bencher.iters_per_sample, bencher.samples
    );
}

/// Top-level benchmark driver (vastly simplified).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<N: AsRef<str>, F>(&mut self, name: N, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(name.as_ref(), &bencher);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group<N: AsRef<str>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.as_ref().to_string(),
            sample_size: self.sample_size,
            _marker: std::marker::PhantomData,
        }
    }
}

/// A named group; benchmarks report as `group/name`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    // Tie the group to its Criterion like the real API does.
    #[allow(dead_code)]
    _marker: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement time (accepted and ignored by the shim).
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<N: AsRef<str>, F>(&mut self, name: N, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(&format!("{}/{}", self.name, name.as_ref()), &bencher);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut runs = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_and_batched() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}

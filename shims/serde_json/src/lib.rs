//! Offline stand-in for `serde_json`, mapping the shim `serde::Value` data
//! model to and from JSON text. Supports everything the workspace round-trips
//! through it: compact and pretty serialization, and deserialization of the
//! full JSON grammar (objects, arrays, strings with escapes, integers,
//! floats, booleans, null).

use serde::{Deserialize, Serialize, Value};

/// Error raised while producing or parsing JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as human-readable JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ----------------------------------------------------------------- writer

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(f: f64, out: &mut String) {
    if !f.is_finite() {
        // Like serde_json's default behaviour for non-finite floats.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a trailing `.0` so the value parses back as a float.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if indent.is_none() {
                        // compact: no space
                    }
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the plain (unescaped) span.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode scalar"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_round_trip() {
        let json = to_string_pretty(&vec![1, 2, 3]).unwrap();
        let back: Vec<i32> = from_str(&json).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "line\n\"quote\"\tand \\ back".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn floats_keep_precision() {
        let xs = vec![0.1, 1.0, -2.5e-3, 1e15, 123456.789];
        let back: Vec<f64> = from_str(&to_string(&xs).unwrap()).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn large_u64_survives() {
        let n = u64::MAX;
        let back: u64 = from_str(&to_string(&n).unwrap()).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn object_parsing() {
        let m: std::collections::BTreeMap<String, i64> =
            from_str(r#"{ "a": 1, "b": -2 }"#).unwrap();
        assert_eq!(m["a"], 1);
        assert_eq!(m["b"], -2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<i64>("1 2").is_err());
        assert!(from_str::<i64>("[").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}

//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture this shim uses a concrete
//! [`Value`] tree as the data model: `Serialize` renders into a `Value`,
//! `Deserialize` reads back out of one, and `serde_json` maps `Value`
//! to/from JSON text. The `#[derive(Serialize, Deserialize)]` macros are
//! provided by the companion `serde_derive` proc-macro crate and generate the
//! same externally-tagged representation real serde would for the shapes this
//! workspace uses (named structs, newtype/tuple structs, enums with unit,
//! tuple and struct variants).

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model all (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integers (and any integer parsed from JSON that fits in i64).
    I64(i64),
    /// Unsigned integers above `i64::MAX`.
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Key-value pairs in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, DeError> {
    Err(DeError(format!(
        "expected {expected}, got {}",
        got.type_name()
    )))
}

/// Renders `self` into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up a field of an object value; used by derived impls.
pub fn object_field<'a>(obj: &'a [(String, Value)], name: &str) -> Result<&'a Value, DeError> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{name}`")))
}

// ---------------------------------------------------------------- primitives

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| DeError(format!("integer {n} out of range")))?,
                    Value::F64(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => f as i64,
                    ref other => return type_err("integer", other),
                };
                <$t>::try_from(n).map_err(|_| DeError(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                if wide <= i64::MAX as u64 { Value::I64(wide as i64) } else { Value::U64(wide) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: u64 = match *v {
                    Value::I64(n) => u64::try_from(n)
                        .map_err(|_| DeError(format!("integer {n} out of range")))?,
                    Value::U64(n) => n,
                    Value::F64(f) if f.fract() == 0.0 && (0.0..1.9e19).contains(&f) => f as u64,
                    ref other => return type_err("integer", other),
                };
                <$t>::try_from(n).map_err(|_| DeError(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::F64(f) => Ok(f as $t),
                    Value::I64(n) => Ok(n as $t),
                    Value::U64(n) => Ok(n as $t),
                    Value::Null => Ok(<$t>::NAN),
                    ref other => type_err("number", other),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => type_err("single-character string", other),
        }
    }
}

// ---------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected array of length {N}, got {got}")))
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+ ; $len:literal)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| DeError("expected array for tuple".into()))?;
                if arr.len() != $len {
                    return Err(DeError(format!("expected {}-tuple, got {} elements", $len, arr.len())));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple!(
    (A.0; 1),
    (A.0, B.1; 2),
    (A.0, B.1, C.2; 3),
    (A.0, B.1, C.2, D.3; 4)
);

fn map_to_value<'a, K, V, I>(iter: I) -> Value
where
    K: std::fmt::Display + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    Value::Object(iter.map(|(k, v)| (k.to_string(), v.to_value())).collect())
}

impl<K: std::fmt::Display, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

/// Map key types: serialized via `Display`, parsed back from the JSON
/// object-key string (serde_json stringifies integer map keys the same way).
pub trait MapKey: Sized {
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! impl_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse()
                    .map_err(|_| DeError(format!("invalid map key `{key}`")))
            }
        }
    )*};
}

impl_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: MapKey + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(o) => o
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => type_err("object", other),
        }
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(o) => o
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => type_err("object", other),
        }
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), self.as_secs().to_value()),
            ("nanos".to_string(), self.subsec_nanos().to_value()),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = match v.as_object() {
            Some(o) => o,
            None => return type_err("duration object", v),
        };
        let secs = u64::from_value(object_field(obj, "secs")?)?;
        let nanos = u32::from_value(object_field(obj, "nanos")?)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i32::from_value(&42i32.to_value()).unwrap(), 42);
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
        let t = (1u8, "x".to_string());
        assert_eq!(
            <(u8, String)>::from_value(&t.to_value()).unwrap(),
            (1u8, "x".to_string())
        );
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(bool::from_value(&Value::I64(1)).is_err());
        assert!(u8::from_value(&Value::I64(300)).is_err());
        assert!(object_field(&[], "missing").is_err());
    }
}

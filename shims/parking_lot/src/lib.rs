//! Offline stand-in for `parking_lot`: thin wrappers over the std
//! synchronization primitives with parking_lot's poison-free API
//! (`lock()` returns the guard directly).

use std::sync;

/// Mutual exclusion lock; `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Reader-writer lock with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let mut joins = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            joins.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}

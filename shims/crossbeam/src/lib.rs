//! Offline stand-in for `crossbeam` (the `channel` module only): MPMC
//! bounded/unbounded channels built on `Mutex` + `Condvar`. Unlike
//! `std::sync::mpsc`, senders *and* receivers are cloneable and a single
//! `Sender`/`Receiver` pair of types covers both channel flavours — the two
//! properties the live cluster relies on.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half; cloneable, usable from any thread.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; cloneable, usable from any thread.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// The channel is disconnected (no receivers left); carries the value back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// The channel is empty and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Outcome of a non-blocking receive attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl std::fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "channel empty"),
                TryRecvError::Disconnected => write!(f, "channel disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Outcome of a receive with timeout.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "receive timed out"),
                RecvTimeoutError::Disconnected => write!(f, "channel disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Creates a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel that holds at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    fn lock<T>(inner: &Inner<T>) -> std::sync::MutexGuard<'_, State<T>> {
        inner
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued (bounded channels only block
        /// when full). Fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = lock(&self.inner);
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = self
                    .inner
                    .capacity
                    .map(|cap| state.queue.len() >= cap)
                    .unwrap_or(false);
                if !full {
                    state.queue.push_back(value);
                    drop(state);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                state = self
                    .inner
                    .not_full
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }

        /// Number of buffered messages.
        pub fn len(&self) -> usize {
            lock(&self.inner).queue.len()
        }

        /// True if no messages are buffered.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.inner).senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = lock(&self.inner);
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = lock(&self.inner);
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.inner.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .inner
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = lock(&self.inner);
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = lock(&self.inner);
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.inner.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .inner
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                state = guard;
            }
        }

        /// Number of buffered messages.
        pub fn len(&self) -> usize {
            lock(&self.inner).queue.len()
        }

        /// True if no messages are buffered.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator draining the channel until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.inner).receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = lock(&self.inner);
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.inner.not_full.notify_all();
            }
        }
    }

    /// See [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(rx.recv().is_err());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_blocks_and_unblocks() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || tx.send(3));
        assert_eq!(rx.recv().unwrap(), 1);
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn timeout_expires() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn mpmc_all_messages_arrive_once() {
        let (tx, rx) = unbounded::<u64>();
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let tx = tx.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..250 {
                    tx.send(p * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 1000);
    }
}

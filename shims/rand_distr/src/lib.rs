//! Offline stand-in for `rand_distr`: the `Distribution` trait plus the
//! `Normal`, `LogNormal` and `Pareto` distributions used by the latency
//! models. Normal sampling uses Box-Muller (caching the second deviate would
//! change the draw order under rejection, so we deliberately discard it —
//! determinism per call matters more here than a 2x constant).

pub use rand::Distribution;
use rand::{Rng, RngCore};

/// Error returned by distribution constructors on invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// Mirrors `rand_distr::NormalError`.
pub type NormalError = ParamError;

fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Box-Muller transform; u1 is kept away from zero so ln() is finite.
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, ParamError> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(ParamError("std_dev must be finite and non-negative"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        if !sigma.is_finite() || sigma < 0.0 {
            return Err(ParamError("sigma must be finite and non-negative"));
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Pareto distribution with the given scale (minimum) and shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    pub fn new(scale: f64, shape: f64) -> Result<Self, ParamError> {
        if !(scale.is_finite() && shape.is_finite()) || scale <= 0.0 || shape <= 0.0 {
            return Err(ParamError("scale and shape must be positive"));
        }
        Ok(Pareto { scale, shape })
    }
}

impl Distribution<f64> for Pareto {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse transform: scale / U^(1/shape), with U in (0, 1].
        let u: f64 = 1.0 - rng.gen::<f64>();
        self.scale / u.powf(1.0 / self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Normal::new(10.0, 2.0).unwrap();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean = {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sd = {}", var.sqrt());
    }

    #[test]
    fn lognormal_positive() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = LogNormal::new(0.0, 0.5).unwrap();
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Pareto::new(1.5, 2.0).unwrap();
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 1.5);
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, f64::NAN).is_err());
        assert!(Pareto::new(0.0, 1.0).is_err());
    }
}

//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled (no `syn`/`quote` available offline) derive macros for the
//! shim `serde`'s `Serialize`/`Deserialize` traits. Supports the shapes this
//! workspace actually derives on: non-generic named-field structs, unit
//! structs, tuple structs (newtypes serialize transparently, wider tuples as
//! arrays), and enums with unit, tuple and struct variants (externally
//! tagged, like real serde's default representation).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields; the count is all we need.
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Consumes leading `#[...]` attribute groups.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Splits a token slice on depth-0 commas, tracking `<...>` nesting so
/// generic argument lists inside field types don't split.
fn count_top_level_elements(tokens: &[TokenTree]) -> usize {
    let mut elements = 0usize;
    let mut saw_token = false;
    let mut angle: i32 = 0;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                saw_token = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                saw_token = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                elements += 1;
                saw_token = false;
            }
            _ => saw_token = true,
        }
    }
    if saw_token {
        elements += 1;
    }
    elements
}

/// Parses the contents of a `{ ... }` field list into field names.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive shim: unexpected token in field list: {other}"),
            None => break,
        };
        fields.push(name);
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected `:` after field name, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-depth 0.
        let mut angle: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive shim: unexpected token in enum body: {other}"),
            None => break,
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_elements(&g.stream().into_iter().collect::<Vec<_>>());
                i += 1;
                Fields::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g);
                i += 1;
                Fields::Named(named)
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant`, then the separating comma.
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_top_level_elements(
                        &g.stream().into_iter().collect::<Vec<_>>(),
                    ))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive shim: unexpected struct body: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let variants = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => parse_variants(g),
                other => panic!("serde_derive shim: unexpected enum body: {other:?}"),
            };
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    }
}

// -------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let pairs: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))")
                        })
                        .collect();
                    format!("serde::Value::Object(vec![{}])", pairs.join(", "))
                }
                Fields::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Unit => "serde::Value::Null".to_string(),
            };
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Serialize::to_value(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("(\"{f}\".to_string(), serde::Serialize::to_value({f}))")
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Value::Object(vec![{}]))]),",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: serde::Deserialize::from_value(serde::object_field(__obj, \"{f}\")?)?"
                            )
                        })
                        .collect();
                    format!(
                        "let __obj = __v.as_object().ok_or_else(|| serde::DeError::custom(\"expected object for struct {name}\"))?;\n\
                         Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(1) => {
                    format!("Ok({name}(serde::Deserialize::from_value(__v)?))")
                }
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Deserialize::from_value(&__arr[{i}])?"))
                        .collect();
                    format!(
                        "let __arr = __v.as_array().ok_or_else(|| serde::DeError::custom(\"expected array for struct {name}\"))?;\n\
                         if __arr.len() != {n} {{ return Err(serde::DeError::custom(\"wrong tuple arity for {name}\")); }}\n\
                         Ok({name}({}))",
                        inits.join(", ")
                    )
                }
                Fields::Unit => format!("Ok({name})"),
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &serde::Value) -> Result<Self, serde::DeError> {{\n{body}\n}}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_value(__inner)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Deserialize::from_value(&__arr[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let __arr = __inner.as_array().ok_or_else(|| serde::DeError::custom(\"expected array for variant {vn}\"))?;\n\
                                     if __arr.len() != {n} {{ return Err(serde::DeError::custom(\"wrong arity for variant {vn}\")); }}\n\
                                     Ok({name}::{vn}({}))\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: serde::Deserialize::from_value(serde::object_field(__obj, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let __obj = __inner.as_object().ok_or_else(|| serde::DeError::custom(\"expected object for variant {vn}\"))?;\n\
                                     Ok({name}::{vn} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         match __v {{\n\
                             serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit}\n\
                                 __other => Err(serde::DeError::custom(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                             }},\n\
                             serde::Value::Object(__o) if __o.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__o[0];\n\
                                 match __tag.as_str() {{\n\
                                     {tagged}\n\
                                     __other => Err(serde::DeError::custom(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => Err(serde::DeError::custom(format!(\"invalid value for enum {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive shim: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive shim: generated Deserialize impl failed to parse")
}
